use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};

fn main() {
    let mix = ["namd", "wrf", "omnetpp", "gcc"];
    let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Oracle, true);
    let mut sim = Simulation::from_names(cfg, &mix, 7).unwrap();
    sim.enable_commit_log(64);
    let _ = sim.run(10_000, 20_000);
    for r in sim.core().commit_log() {
        println!(
            "t{} seq={:<7} {:<8} {:?} F{} D{} I{} C{} R{}  d-f={} i-d={} c-i={} r-c={}",
            r.thread,
            r.seq,
            r.op.to_string(),
            r.steer,
            r.fetch,
            r.dispatch,
            r.issue,
            r.complete,
            r.commit,
            r.dispatch - r.fetch,
            r.issue as i64 - r.dispatch as i64,
            r.complete - r.issue,
            r.commit - r.complete
        );
    }
    for t in 0..4 {
        println!("{}", sim.core().debug_state(t));
        println!("   {}", sim.core().debug_window_head(t));
    }
}
