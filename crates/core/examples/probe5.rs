use shelfsim_core::{CoreConfig, Simulation};
use std::time::Instant;

fn main() {
    let cfg = CoreConfig::base64(4);
    let mut sim = Simulation::from_names(cfg, &["gcc", "mcf", "hmmer", "lbm"], 1).unwrap();
    let t0 = Instant::now();
    let r = sim.run(20_000, 60_000);
    let dt = t0.elapsed();
    for t in &r.threads {
        println!(
            "{:<8} committed={} cpi={:.2} inseq={:.3} bpred={:.3} missteer={:.3}",
            t.benchmark,
            t.committed,
            t.cpi,
            t.in_sequence_fraction,
            t.branch_mispredict_ratio,
            t.missteer_rate
        );
    }
    println!("stalls={:?}", r.counters.stalls);
    println!(
        "viol={} mispred={} mshr={} ipc={:.2}",
        r.counters.memory_violations,
        r.counters.branch_mispredicts,
        r.counters.mshr_stalls,
        r.ipc()
    );
    println!(
        "wall: {:?} for 80k cycles -> {:.0} cycles/sec",
        dt,
        80_000.0 / dt.as_secs_f64()
    );
}
