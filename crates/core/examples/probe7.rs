use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};

fn main() {
    for name in ["gcc", "hmmer", "bwaves", "mcf"] {
        let mut b = Simulation::from_names(CoreConfig::base64(1), &[name], 7).unwrap();
        let rb = b.run(5000, 20000);
        let cfg = CoreConfig::base64_shelf64(1, SteerPolicy::Practical, true);
        let mut s = Simulation::from_names(cfg, &[name], 7).unwrap();
        let rs = s.run(5000, 20000);
        let cfgo = CoreConfig::base64_shelf64(1, SteerPolicy::Oracle, true);
        let mut o = Simulation::from_names(cfgo, &[name], 7).unwrap();
        let ro = o.run(5000, 20000);
        println!("{:<8} base_cpi={:.2} shelf_cpi={:.2} ({:+.1}%) shelf_frac={:.2} | oracle_cpi={:.2} ({:+.1}%) frac={:.2} inseq_base={:.2}",
            name, rb.threads[0].cpi, rs.threads[0].cpi,
            (rb.threads[0].cpi/rs.threads[0].cpi-1.0)*100.0,
            rs.counters.shelf_dispatch_fraction(),
            ro.threads[0].cpi, (rb.threads[0].cpi/ro.threads[0].cpi-1.0)*100.0,
            ro.counters.shelf_dispatch_fraction(),
            rb.threads[0].in_sequence_fraction);
        println!(
            "         oracle shelf-head stalls [order,ssr,data,struct,ss]: {:?} issued_shelf={}",
            ro.counters.shelf_head_stalls, ro.counters.issued_shelf
        );
    }
}
