use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};
fn main() {
    let cfg = CoreConfig {
        shelf_entries: 8,
        steer: SteerPolicy::AlwaysShelf,
        ..CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysShelf, true)
    };
    let mix = ["gcc", "mcf", "hmmer", "lbm"];
    let mut sim = Simulation::from_names(cfg, &mix, 5).unwrap();
    for i in 0..3000 {
        sim.step();
        if i % 500 == 0 {
            for t in 0..4 {
                println!("cyc{i} {}", sim.core().debug_state(t));
            }
            println!(
                "  committed: {:?}",
                (0..4).map(|t| sim.core().committed(t)).collect::<Vec<_>>()
            );
            println!("  head0: {}", sim.core().debug_window_head(0));
            println!("  stalls: {:?}", sim.core().counters.stalls);
        }
    }
}
