use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};

fn main() {
    let cfg = CoreConfig::base64_shelf64(1, SteerPolicy::Practical, true);
    let mut s = Simulation::from_names(cfg, &["hmmer"], 7).unwrap();
    let rs = s.run(5000, 20000);
    let c = &rs.counters;
    println!(
        "practical hmmer ST: cpi={:.2} shelf_frac={:.2}",
        rs.threads[0].cpi,
        c.shelf_dispatch_fraction()
    );
    println!(
        "shelf head stalls [order,ssr,data,struct,ss]: {:?}",
        c.shelf_head_stalls
    );
    println!(
        "issued={} issued_shelf={} cycles={}",
        c.issued, c.issued_shelf, c.cycles
    );
    println!("dispatch stalls: {:?}", c.stalls);
    println!(
        "violations={} mispredicts={} mshr={}",
        c.memory_violations, c.branch_mispredicts, c.mshr_stalls
    );
}
