use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};

fn main() {
    let mix = ["namd", "wrf", "omnetpp", "gcc"];
    for (label, cfg) in [
        ("base64", CoreConfig::base64(4)),
        (
            "shelf-opt",
            CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true),
        ),
        (
            "shelf-oracle",
            CoreConfig::base64_shelf64(4, SteerPolicy::Oracle, true),
        ),
    ] {
        let mut sim = Simulation::from_names(cfg, &mix, 7).unwrap();
        let r = sim.run(10_000, 40_000);
        println!(
            "== {label} ipc={:.3} shelf_frac={:.2}",
            r.ipc(),
            r.counters.shelf_dispatch_fraction()
        );
        for t in &r.threads {
            println!(
                "  {:<8} cpi={:<8.2} inseq={:.2} mispred={:.3}",
                t.benchmark, t.cpi, t.in_sequence_fraction, t.branch_mispredict_ratio
            );
        }
        println!(
            "  head stalls [order,ssr,data,struct,ss]={:?}",
            r.counters.shelf_head_stalls
        );
        println!("  stalls: {:?}", r.counters.stalls);
        println!(
            "  viol={} mispred={} mshr={}",
            r.counters.memory_violations, r.counters.branch_mispredicts, r.counters.mshr_stalls
        );
        println!(
            "  commit stalls [incomplete, shelf-coord, sbuf]={:?}",
            r.counters.commit_stalls
        );
        println!("  l1i miss={:.3} ({} acc)  l1d miss={:.3} ({} acc)  l2 miss={:.3} ({} acc)  fetched={} wrongpath={}",
            r.l1i.miss_ratio(), r.l1i.accesses, r.l1d.miss_ratio(), r.l1d.accesses,
            r.l2.miss_ratio(), r.l2.accesses, r.counters.fetched, r.counters.wrong_path_fetched);
    }
}
