use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};

fn run(cfg: CoreConfig, mix: &[&str], seed: u64) -> (f64, Vec<f64>, f64, u64) {
    let mut sim = Simulation::from_names(cfg, mix, seed).unwrap();
    let r = sim.run(20_000, 60_000);
    (
        r.ipc(),
        r.cpis(),
        r.counters.shelf_dispatch_fraction(),
        r.late_shelf_commits,
    )
}

fn main() {
    let mixes = [
        ["gcc", "mcf", "hmmer", "lbm"],
        ["perlbench", "bwaves", "astar", "milc"],
        ["sjeng", "libquantum", "povray", "GemsFDTD"],
    ];
    for mix in &mixes {
        println!("=== {:?}", mix);
        let (b64, _, _, _) = run(CoreConfig::base64(4), mix, 1);
        let (sh_c, _, fc, lc1) = run(
            CoreConfig::base64_shelf64(4, SteerPolicy::Practical, false),
            mix,
            1,
        );
        let (sh_o, _, fo, lc2) = run(
            CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true),
            mix,
            1,
        );
        let (orc, _, forc, lc3) = run(
            CoreConfig::base64_shelf64(4, SteerPolicy::Oracle, true),
            mix,
            1,
        );
        let (b128, _, _, _) = run(CoreConfig::base128(4), mix, 1);
        println!("base64       ipc={:.3}", b64);
        println!(
            "shelf cons   ipc={:.3} (+{:.1}%) shelf_frac={:.2} late={}",
            sh_c,
            (sh_c / b64 - 1.0) * 100.0,
            fc,
            lc1
        );
        println!(
            "shelf opt    ipc={:.3} (+{:.1}%) shelf_frac={:.2} late={}",
            sh_o,
            (sh_o / b64 - 1.0) * 100.0,
            fo,
            lc2
        );
        println!(
            "shelf oracle ipc={:.3} (+{:.1}%) shelf_frac={:.2} late={}",
            orc,
            (orc / b64 - 1.0) * 100.0,
            forc,
            lc3
        );
        println!(
            "base128      ipc={:.3} (+{:.1}%)",
            b128,
            (b128 / b64 - 1.0) * 100.0
        );
    }
}
