use shelfsim_core::{CoreConfig, Simulation};

fn main() {
    let cfg = CoreConfig::base64(1);
    let mut sim = Simulation::from_names(cfg, &["hmmer"], 3).unwrap();
    for i in 0..120 {
        sim.step();
        if i % 4 == 0 {
            println!("{}", sim.core().debug_state(0));
            println!("   head: {}", sim.core().debug_window_head(0));
        }
    }
}
