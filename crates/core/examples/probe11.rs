use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};
fn main() {
    for (label, cfg) in [
        ("base64", CoreConfig::base64(1)),
        (
            "always-shelf",
            CoreConfig::base64_shelf64(1, SteerPolicy::AlwaysShelf, true),
        ),
    ] {
        let mut sim = Simulation::from_names(cfg, &["bzip2"], 5).unwrap();
        let r = sim.run(300, 4000);
        let c = &r.counters;
        println!("{label}: cpi={:.3} mispred={} viol={} squashed={} stalls={:?} l1d_miss={:.3} lsq_searches={}",
            r.threads[0].cpi, c.branch_mispredicts, c.memory_violations, c.squashed, c.stalls, r.l1d.miss_ratio(), c.lsq_searches);
    }
}
