//! Event-driven cycle skipping: the probe-and-diff protocol.
//!
//! A memory-bound core spends most of its cycles doing *nothing*: every
//! stage blocked, waiting for a DRAM fill hundreds of cycles away. The
//! engine's hot loop still pays the full per-cycle walk for each of those
//! cycles. This module provides the bookkeeping for skipping them.
//!
//! # Protocol
//!
//! The engine cannot prove a cycle is idle a priori — too many stages have
//! data-dependent side conditions. Instead it *observes* idleness:
//!
//! 1. A tick in which no stage made architectural progress (no fetch,
//!    dispatch, issue, writeback, commit, or store-buffer drain) **arms**
//!    the engine.
//! 2. The next tick is run as **probe 1**: the full [`Counters`] delta,
//!    [`HierarchyCounters`] delta, and a [`StableSnapshot`] of every piece
//!    of cycle-varying control state are captured.
//! 3. The tick after that is **probe 2**, captured the same way. If both
//!    probes made no progress and their deltas, snapshots, and
//!    streak-bump masks are *identical*, the core is at a fixed point:
//!    every subsequent cycle repeats the probe cycle exactly, until the
//!    first externally scheduled event fires.
//! 4. The engine computes the **event horizon** — the earliest cycle at
//!    which anything can change (pending pipeline event, ready-wheel
//!    entry, MSHR fill, functional unit release, fetch-stall expiry,
//!    fetch-to-dispatch pipe maturation, store-buffer drain eligibility)
//!    — and fast-forwards to it: counters are replayed scaled
//!    (`delta * k`), decaying state (SSRs, steering tables) is replayed
//!    exactly, and the cycle counter jumps.
//!
//! Anything the protocol cannot prove constant simply prevents the skip
//! (the probes disagree), so the fast-forwarded run is *bit-identical* to
//! the tick-by-tick run — counters, commit stream, and trace tallies.
//!
//! Skipped cycles are accounted per horizon cause in [`SkipStats`] so runs
//! can report where their idle time went.

use crate::counters::Counters;
use crate::inst::InstId;
use shelfsim_mem::HierarchyCounters;

/// Maximum hardware threads the snapshot covers (the pipeline itself caps
/// thread bitmasks at 64 and `CoreConfig::validate` at 8).
pub(crate) const MAX_SKIP_THREADS: usize = 8;

/// Number of [`SkipCause`] variants (array sizing).
pub const SKIP_CAUSES: usize = 8;

/// What bounded a skipped span: the horizon term that fired first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum SkipCause {
    /// A pending pipeline event (writeback / squash filter) was due.
    PipeEvent = 0,
    /// A ready-wheel entry (IQ source-ready calendar) was due.
    ReadyWheel = 1,
    /// An outstanding MSHR fill (data or instruction side) was due.
    MshrFill = 2,
    /// An unpipelined functional unit was due to free up.
    FuFree = 3,
    /// A thread's fetch stall (I-miss / redirect hold) was due to expire.
    FetchStall = 4,
    /// A frontend head was due to mature through the fetch-to-dispatch pipe.
    FrontendDecode = 5,
    /// A store-buffer head was due to become drain-eligible.
    StoreBuffer = 6,
    /// The caller's cycle budget capped the span (includes true deadlocks,
    /// where no horizon term exists at all).
    LimitCap = 7,
}

impl SkipCause {
    /// All causes, in `as usize` index order.
    pub const ALL: [SkipCause; SKIP_CAUSES] = [
        SkipCause::PipeEvent,
        SkipCause::ReadyWheel,
        SkipCause::MshrFill,
        SkipCause::FuFree,
        SkipCause::FetchStall,
        SkipCause::FrontendDecode,
        SkipCause::StoreBuffer,
        SkipCause::LimitCap,
    ];

    /// Stable lowercase name (reports, JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            SkipCause::PipeEvent => "pipe_event",
            SkipCause::ReadyWheel => "ready_wheel",
            SkipCause::MshrFill => "mshr_fill",
            SkipCause::FuFree => "fu_free",
            SkipCause::FetchStall => "fetch_stall",
            SkipCause::FrontendDecode => "frontend_decode",
            SkipCause::StoreBuffer => "store_buffer",
            SkipCause::LimitCap => "limit_cap",
        }
    }
}

/// Cycle-skip accounting: every skipped cycle is attributed to the horizon
/// cause that bounded its span, so `skipped_cycles == by_cause.sum()`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Cycles fast-forwarded instead of ticked.
    pub skipped_cycles: u64,
    /// Fast-forward spans executed.
    pub spans: u64,
    /// Skipped cycles by bounding cause, indexed by `SkipCause as usize`.
    pub by_cause: [u64; SKIP_CAUSES],
    /// Probe pairs that failed the fixed-point comparison (diagnostic: a
    /// high ratio against `spans` means idle spans exist but something
    /// cycle-varying keeps defeating the protocol).
    pub probe_mismatches: u64,
}

/// Per-thread lens of cycle-varying control state. Equality between the
/// two probes is (part of) the fixed-point certificate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ThreadLens {
    pub frontend: usize,
    pub window: usize,
    pub shelf: usize,
    pub rob: usize,
    pub lq: usize,
    pub sq: usize,
    pub store_buffer: usize,
    pub inflight_loads: usize,
    pub inflight_stores: usize,
    pub pre_issue_count: usize,
    pub fetch_stalled_until: u64,
    pub waiting_branch: Option<InstId>,
    pub next_fetch_seq: u64,
    pub head_blocked_id: Option<InstId>,
    pub tracker_head: u64,
    pub shelf_retire_ptr: u64,
    pub shelf_next_idx: u64,
    /// SSR values are included directly: while they decay the probes
    /// disagree, so a skip can only fire once both registers reached zero —
    /// exactly when their decay stops mattering.
    pub ssr_iq: u32,
    pub ssr_shelf: u32,
}

/// Snapshot of every piece of engine state that can change from one idle
/// cycle to the next. Two equal consecutive snapshots (with equal counter
/// deltas) prove the core is at a fixed point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct StableSnapshot {
    pub threads: [ThreadLens; MAX_SKIP_THREADS],
    pub icount_last: usize,
    pub fetch_rr: usize,
    pub slab_live: usize,
    pub iq_len: usize,
    pub iq_waiting: usize,
    pub ready_pool_len: usize,
    pub events_len: usize,
    pub ready_wheel_len: usize,
}

/// One captured probe: the per-cycle counter deltas, the state snapshot at
/// the probe's end, and the streak-bump mask observed during the tick.
#[derive(Clone, Debug)]
pub(crate) struct ProbeRecord {
    /// `Core::now` immediately after the probe tick (continuity check: a
    /// record is only comparable to one ending exactly one cycle earlier).
    pub end_cycle: u64,
    pub delta: Counters,
    pub mem_delta: HierarchyCounters,
    pub snap: StableSnapshot,
    /// Threads whose `head_blocked_streak` was bumped during the tick.
    pub streak_bumped: u64,
}

/// Probe state machine (see the module docs for the protocol).
#[derive(Clone, Debug, Default)]
pub(crate) enum ProbePhase {
    /// Last tick made progress; nothing captured.
    #[default]
    Idle,
    /// Last tick made no progress; the next no-progress tick is probed.
    Armed,
    /// One probe captured, awaiting its pair (boxed: a record embeds full
    /// counter blocks and would otherwise dwarf the no-data variants).
    Probed(Box<ProbeRecord>),
}

/// The per-core skip engine: runtime toggle, probe state, and accounting.
///
/// Deliberately *not* part of [`crate::CoreConfig`]: skipping is an engine
/// execution strategy with no architectural effect, and config hashes feed
/// campaign journals.
#[derive(Clone, Debug)]
pub(crate) struct SkipEngine {
    pub enabled: bool,
    pub phase: ProbePhase,
    /// Set by stage code whenever architectural progress happens this tick.
    pub progress: bool,
    /// Per-thread bitmask: `head_blocked_streak` incremented this tick.
    pub streak_bumped: u64,
    pub stats: SkipStats,
}

impl SkipEngine {
    pub(crate) fn new() -> Self {
        SkipEngine {
            enabled: true,
            phase: ProbePhase::Idle,
            progress: false,
            streak_bumped: 0,
            stats: SkipStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_match_all_order() {
        for (i, c) in SkipCause::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{}", c.as_str());
        }
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = SkipStats::default();
        assert_eq!(s.skipped_cycles, 0);
        assert_eq!(s.spans, 0);
        assert_eq!(s.by_cause, [0; SKIP_CAUSES]);
    }
}
