//! Event-driven cycle skipping: the probe-and-diff protocol.
//!
//! A memory-bound core spends most of its cycles doing *nothing*: every
//! stage blocked, waiting for a DRAM fill hundreds of cycles away. The
//! engine's hot loop still pays the full per-cycle walk for each of those
//! cycles. This module provides the bookkeeping for skipping them.
//!
//! # Protocol
//!
//! The engine cannot prove a cycle is idle a priori — too many stages have
//! data-dependent side conditions. Instead it *observes* idleness:
//!
//! 1. A tick in which no stage made architectural progress (no fetch,
//!    dispatch, issue, writeback, commit, or store-buffer drain) **arms**
//!    the engine.
//! 2. The next tick is run as **probe 1**: the full [`Counters`] delta,
//!    [`HierarchyCounters`] delta, and a [`StableSnapshot`] of every piece
//!    of cycle-varying control state are captured.
//! 3. The tick after that is **probe 2**, captured the same way. If both
//!    probes made no progress and their deltas, snapshots, and
//!    streak-bump masks are *identical*, the core is at a fixed point:
//!    every subsequent cycle repeats the probe cycle exactly, until the
//!    first externally scheduled event fires.
//! 4. The engine computes the **event horizon** — the earliest cycle at
//!    which anything can change (pending pipeline event, ready-wheel
//!    entry, MSHR fill, functional unit release, fetch-stall expiry,
//!    fetch-to-dispatch pipe maturation, store-buffer drain eligibility)
//!    — and fast-forwards to it: counters are replayed scaled
//!    (`delta * k`), decaying state (SSRs, steering tables) is replayed
//!    exactly, and the cycle counter jumps.
//!
//! Anything the protocol cannot prove constant simply prevents the skip
//! (the probes disagree), so the fast-forwarded run is *bit-identical* to
//! the tick-by-tick run — counters, commit stream, and trace tallies.
//!
//! # Per-thread partial progress: park certificates
//!
//! The whole-core protocol above only fires when *every* thread is idle
//! simultaneously — rare under SMT, where the design's whole point is that
//! some threads commit while others sit on DRAM fills. The partial-progress
//! layer proves a *subset* of threads fixed:
//!
//! * A thread that made no progress this tick is examined analytically by
//!   `Core::try_park`: if its fetch is ineligible, its frontend head is
//!   absent/immature/blocked on a persistent *local* (partitioned) resource,
//!   its shelf head is blocked on a stable local cause, it owns no ready
//!   work, its store buffer is quiet, and its SSR pair is quiescent, the
//!   thread is **parked** under a [`ParkCert`].
//! * Subsequent *reduced ticks* skip the parked thread's issue-stage head
//!   classification, shelf-candidate evaluation, and dispatch resource
//!   walk, replaying the certificate's recorded per-cycle counter bumps
//!   instead (with the one *shared* input — IQ occupancy — re-checked
//!   live each cycle). Everything cheap or shared (commit, decay,
//!   occupancy integrals, tracer sampling) still runs for real, so reduced
//!   ticks are bit-identical to full ticks.
//! * The certificate carries a **horizon**: the earliest passive wake-up
//!   (fetch-stall expiry, frontend maturation, store-buffer readiness, the
//!   thread's own next MSHR fill). Event wake-ups need no horizon term:
//!   the wheel drains inside the tick clear a parked owner's bit the
//!   moment an entry comes due, ahead of every stage that consults parked
//!   state — the moment a shared structure couples a parked thread back
//!   in, it runs a full tick again.
//! * When **all** threads hold certificates the engine jumps whole-core
//!   spans directly: one captured reduced tick supplies the per-cycle
//!   delta (the certificates prove it constant — no arm + probe-pair
//!   warm-up), and the existing `fast_forward` replay machinery is reused
//!   verbatim. If the capture tick unexpectedly progresses, the jump is
//!   abandoned (`park_aborts`) and every certificate is revoked.
//!
//! Skipped cycles are accounted per horizon cause in [`SkipStats`] so runs
//! can report where their idle time went; parked coverage (thread-cycles
//! mirrored instead of walked) is reported alongside.

use crate::config::CoreConfig;
use crate::counters::{Counters, LocalStall};
use crate::inst::InstId;
use shelfsim_mem::HierarchyCounters;
use shelfsim_trace::StallCause;

/// Maximum hardware threads the snapshot covers. Tied by definition to the
/// config validator's thread cap: a config that validates can never carry
/// more threads than the skip engine has snapshot lenses / park
/// certificates for.
pub(crate) const MAX_SKIP_THREADS: usize = CoreConfig::MAX_THREADS;

// The pipeline tracks threads in u64 bitmasks (progress, parked, streak
// masks); a cap past 64 would shift bits off the end.
const _: () = assert!(
    MAX_SKIP_THREADS <= 64,
    "thread bitmasks are u64; MAX_SKIP_THREADS must fit"
);

/// Number of [`SkipCause`] variants (array sizing).
pub const SKIP_CAUSES: usize = 8;

/// What bounded a skipped span: the horizon term that fired first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum SkipCause {
    /// A pending pipeline event (writeback / squash filter) was due.
    PipeEvent = 0,
    /// A ready-wheel entry (IQ source-ready calendar) was due.
    ReadyWheel = 1,
    /// An outstanding MSHR fill (data or instruction side) was due.
    MshrFill = 2,
    /// An unpipelined functional unit was due to free up.
    FuFree = 3,
    /// A thread's fetch stall (I-miss / redirect hold) was due to expire.
    FetchStall = 4,
    /// A frontend head was due to mature through the fetch-to-dispatch pipe.
    FrontendDecode = 5,
    /// A store-buffer head was due to become drain-eligible.
    StoreBuffer = 6,
    /// The caller's cycle budget capped the span (includes true deadlocks,
    /// where no horizon term exists at all).
    LimitCap = 7,
}

impl SkipCause {
    /// All causes, in `as usize` index order.
    pub const ALL: [SkipCause; SKIP_CAUSES] = [
        SkipCause::PipeEvent,
        SkipCause::ReadyWheel,
        SkipCause::MshrFill,
        SkipCause::FuFree,
        SkipCause::FetchStall,
        SkipCause::FrontendDecode,
        SkipCause::StoreBuffer,
        SkipCause::LimitCap,
    ];

    /// Stable lowercase name (reports, JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            SkipCause::PipeEvent => "pipe_event",
            SkipCause::ReadyWheel => "ready_wheel",
            SkipCause::MshrFill => "mshr_fill",
            SkipCause::FuFree => "fu_free",
            SkipCause::FetchStall => "fetch_stall",
            SkipCause::FrontendDecode => "frontend_decode",
            SkipCause::StoreBuffer => "store_buffer",
            SkipCause::LimitCap => "limit_cap",
        }
    }
}

/// Folds one horizon term into the running best `(cycle, cause)`.
///
/// The earlier cycle wins; when two terms land on the *same* cycle, the
/// lower [`SkipCause`] index wins. Horizon attribution therefore has a
/// total deterministic order independent of the sequence in which the
/// terms are considered, so `SkipStats::by_cause` is reproducible across
/// refactors that reorder the horizon computation.
pub(crate) fn consider(best: &mut (u64, SkipCause), cycle: u64, cause: SkipCause) {
    if cycle < best.0 || (cycle == best.0 && (cause as usize) < (best.1 as usize)) {
        *best = (cycle, cause);
    }
}

/// Cycle-skip accounting: every skipped cycle is attributed to the horizon
/// cause that bounded its span, so `skipped_cycles == by_cause.sum()`.
/// Minimum estimated all-parked span (cycles) worth converting into a
/// probe-and-jump. A jump's fixed costs — two counter-block clones, a
/// stable snapshot, and the scaled fast-forward replay — amortize to
/// roughly a dozen reduced ticks, and SMT mixes with staggered per-thread
/// fills open a stream of shorter all-parked windows than that. Those
/// windows run as plain reduced ticks instead; correctness is unaffected
/// either way (the gate consults a pre-tick horizon estimate only).
pub const MIN_PARK_JUMP_SPAN: u64 = 16;

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Cycles fast-forwarded instead of ticked.
    pub skipped_cycles: u64,
    /// Fast-forward spans executed.
    pub spans: u64,
    /// Skipped cycles by bounding cause, indexed by `SkipCause as usize`.
    pub by_cause: [u64; SKIP_CAUSES],
    /// Probe pairs that failed the fixed-point comparison (diagnostic: a
    /// high ratio against `spans` means idle spans exist but something
    /// cycle-varying keeps defeating the protocol).
    pub probe_mismatches: u64,
    /// Thread-cycles spent parked: each reduced tick contributes one per
    /// parked thread. The partial-progress coverage metric — these are
    /// thread-walks the engine replayed from certificates instead of
    /// evaluating.
    pub parked_thread_cycles: u64,
    /// Ticks that ran with at least one thread parked.
    pub reduced_ticks: u64,
    /// Park certificates granted.
    pub parks: u64,
    /// Whole-core fast-forwards entered directly from an all-parked state
    /// (no arm + probe-pair warm-up; also counted in `spans`).
    pub park_jumps: u64,
    /// All-parked capture ticks that unexpectedly made progress, forcing
    /// the jump to be abandoned and every certificate revoked. Nonzero
    /// values indicate a certificate soundness bug — the release-mode
    /// safety net caught it, but coverage is being lost.
    pub park_aborts: u64,
}

/// Issue-stage head classification replayed for a parked thread: what the
/// real per-cycle classifier would record, proven constant by the park
/// predicate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ParkIssue {
    /// `Counters::shelf_head_stalls` bucket bumped each cycle (`None`: no
    /// shelf head, or a head blocked outside the diagnostic chain, e.g. a
    /// TSO elder-load hold, which bumps nothing).
    pub bucket: Option<u8>,
    /// Whether the head-blocked streak (and the engine's streak-bump mask)
    /// advances each cycle.
    pub streak: bool,
    /// Issue-side tracer attribution to inject as the head cause (`None`:
    /// fall through to the live attribution logic, whose remaining inputs
    /// are frozen for a parked thread).
    pub cause: Option<StallCause>,
}

/// Dispatch-stage outcome replayed for a parked thread. The mirror runs
/// *inside* the real dispatch rotation (budget accounting, blocked-mask
/// updates and round-robin order are shared state and stay live); only the
/// head's resource walk is replaced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum ParkDispatch {
    /// Frontend empty or head still maturing through the fetch-to-dispatch
    /// pipe: the real loop's cheap pre-checks handle it; nothing to mirror.
    #[default]
    NoHead,
    /// Memory-barrier head serialized behind its thread's instruction
    /// window / store buffer: bump `stalls.barrier` once per cycle.
    Barrier,
    /// IQ-steered head with a persistent *local* full condition. The shared
    /// IQ-occupancy check still runs live each cycle (it is first in
    /// `try_dispatch`'s order and other threads change it); only when the
    /// IQ has room is the recorded local cause charged.
    IqBlocked(LocalStall),
    /// Shelf-steered head with a persistent local full condition (every
    /// check ahead of the recorded one is local and frozen).
    ShelfBlocked(LocalStall),
}

/// Proof that a thread is at a per-thread fixed point: the per-cycle
/// effects the pipeline would produce for it (replayed by reduced ticks)
/// and the first cycle at which the proof expires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ParkCert {
    /// First cycle the certificate no longer covers: the earliest passive
    /// wake-up among fetch-stall expiry, frontend-head maturation,
    /// store-buffer readiness and the thread's next claimed MSHR fill.
    /// The thread unparks at the top of this cycle's tick. (Event- and
    /// ready-wheel wake-ups are handled separately at the wheel drain
    /// points inside the tick, and can fire earlier.)
    pub horizon: u64,
    /// Issue-stage per-cycle replay.
    pub issue: ParkIssue,
    /// Dispatch-stage per-cycle replay.
    pub dispatch: ParkDispatch,
}

/// Per-thread lens of cycle-varying control state. Equality between the
/// two probes is (part of) the fixed-point certificate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ThreadLens {
    pub frontend: usize,
    pub window: usize,
    pub shelf: usize,
    pub rob: usize,
    pub lq: usize,
    pub sq: usize,
    pub store_buffer: usize,
    pub inflight_loads: usize,
    pub inflight_stores: usize,
    pub pre_issue_count: usize,
    pub fetch_stalled_until: u64,
    pub waiting_branch: Option<InstId>,
    pub next_fetch_seq: u64,
    pub head_blocked_id: Option<InstId>,
    pub tracker_head: u64,
    pub shelf_retire_ptr: u64,
    pub shelf_next_idx: u64,
    /// SSR values are included directly: while they decay the probes
    /// disagree, so a skip can only fire once both registers reached zero —
    /// exactly when their decay stops mattering.
    pub ssr_iq: u32,
    pub ssr_shelf: u32,
}

/// Snapshot of every piece of engine state that can change from one idle
/// cycle to the next. Two equal consecutive snapshots (with equal counter
/// deltas) prove the core is at a fixed point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct StableSnapshot {
    pub threads: [ThreadLens; MAX_SKIP_THREADS],
    pub icount_last: usize,
    pub fetch_rr: usize,
    pub slab_live: usize,
    pub iq_len: usize,
    pub iq_waiting: usize,
    pub ready_pool_len: usize,
    pub events_len: usize,
    pub ready_wheel_len: usize,
}

/// One captured probe: the per-cycle counter deltas, the state snapshot at
/// the probe's end, and the streak-bump mask observed during the tick.
#[derive(Clone, Debug)]
pub(crate) struct ProbeRecord {
    /// `Core::now` immediately after the probe tick (continuity check: a
    /// record is only comparable to one ending exactly one cycle earlier).
    pub end_cycle: u64,
    pub delta: Counters,
    pub mem_delta: HierarchyCounters,
    pub snap: StableSnapshot,
    /// Threads whose `head_blocked_streak` was bumped during the tick.
    pub streak_bumped: u64,
}

/// Probe state machine (see the module docs for the protocol).
#[derive(Clone, Debug, Default)]
pub(crate) enum ProbePhase {
    /// Last tick made progress; nothing captured.
    #[default]
    Idle,
    /// Last tick made no progress; the next no-progress tick is probed.
    Armed,
    /// One probe captured, awaiting its pair (boxed: a record embeds full
    /// counter blocks and would otherwise dwarf the no-data variants).
    Probed(Box<ProbeRecord>),
}

/// The per-core skip engine: runtime toggle, probe state, and accounting.
///
/// Deliberately *not* part of [`crate::CoreConfig`]: skipping is an engine
/// execution strategy with no architectural effect, and config hashes feed
/// campaign journals.
#[derive(Clone, Debug)]
pub(crate) struct SkipEngine {
    pub enabled: bool,
    pub phase: ProbePhase,
    /// Set by stage code whenever architectural progress happens this tick.
    pub progress: bool,
    /// Per-thread bitmask of this tick's progress (feeds the park
    /// predicate: only a thread whose bit stayed clear may be examined).
    pub progress_mask: u64,
    /// Per-thread bitmask: `head_blocked_streak` incremented this tick.
    pub streak_bumped: u64,
    /// Per-thread bitmask of currently parked threads.
    pub parked: u64,
    /// Certificates for parked threads (only entries whose `parked` bit is
    /// set are meaningful).
    pub certs: [ParkCert; MAX_SKIP_THREADS],
    /// Cycle the revocation pass last ran for, deduplicating the
    /// `tick_bounded` loop-top pass against the one at the top of `tick()`
    /// (the latter keeps direct `tick()` driving sound).
    pub revoked_at: u64,
    /// Earliest certificate horizon among parked threads — the revocation
    /// pass is a two-compare no-op until this cycle arrives. Event wake-ups
    /// clear `parked` bits without touching it, so the cache may run stale-
    /// low; that only costs one wasted recomputation, never a missed wake.
    pub next_horizon: u64,
    pub stats: SkipStats,
}

impl SkipEngine {
    pub(crate) fn new() -> Self {
        SkipEngine {
            enabled: true,
            phase: ProbePhase::Idle,
            progress: false,
            progress_mask: 0,
            streak_bumped: 0,
            parked: 0,
            certs: [ParkCert::default(); MAX_SKIP_THREADS],
            revoked_at: u64::MAX,
            next_horizon: u64::MAX,
            stats: SkipStats::default(),
        }
    }

    /// Records architectural progress by thread `t` this tick.
    ///
    /// A parked thread making progress would mean its certificate replay
    /// diverged from reality — the debug assertion is the partial-progress
    /// layer's soundness tripwire (release builds additionally guard the
    /// all-parked jump with a progress check).
    #[inline]
    pub(crate) fn note_progress(&mut self, t: usize) {
        self.progress = true;
        self.progress_mask |= 1 << t;
        debug_assert!(
            self.parked & (1 << t) == 0,
            "parked thread {t} made architectural progress"
        );
    }

    /// Whether thread `t` currently holds a park certificate.
    #[inline]
    pub(crate) fn is_parked(&self, t: usize) -> bool {
        self.parked & (1 << t) != 0
    }

    /// Grants thread `t` a park certificate.
    pub(crate) fn park(&mut self, t: usize, cert: ParkCert) {
        debug_assert!(!self.is_parked(t));
        self.parked |= 1 << t;
        self.next_horizon = self.next_horizon.min(cert.horizon);
        self.certs[t] = cert;
        self.stats.parks += 1;
    }

    /// Revokes every certificate (engine toggle, abort, or reset). The
    /// per-thread paths clear `parked` bits individually instead: horizon
    /// expiry in the revocation pass, event wake-ups at the wheel drains.
    pub(crate) fn unpark_all(&mut self) {
        self.parked = 0;
        self.next_horizon = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_match_all_order() {
        for (i, c) in SkipCause::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{}", c.as_str());
        }
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = SkipStats::default();
        assert_eq!(s.skipped_cycles, 0);
        assert_eq!(s.spans, 0);
        assert_eq!(s.by_cause, [0; SKIP_CAUSES]);
        assert_eq!(s.parked_thread_cycles, 0);
        assert_eq!(s.reduced_ticks, 0);
        assert_eq!(s.parks, 0);
        assert_eq!(s.park_jumps, 0);
        assert_eq!(s.park_aborts, 0);
    }

    #[test]
    fn skip_thread_cap_matches_config_thread_cap() {
        // `CoreConfig::validate` rejects anything the snapshot arrays and
        // certificate file cannot hold; this pins the tie so neither side
        // can drift silently.
        assert_eq!(MAX_SKIP_THREADS, CoreConfig::MAX_THREADS);
    }

    #[test]
    fn horizon_tie_break_prefers_the_lower_cause_index() {
        // Two horizon terms landing on the same cycle must resolve to the
        // same cause regardless of consideration order.
        let mut forward = (u64::MAX, SkipCause::LimitCap);
        consider(&mut forward, 120, SkipCause::PipeEvent);
        consider(&mut forward, 120, SkipCause::MshrFill);
        let mut backward = (u64::MAX, SkipCause::LimitCap);
        consider(&mut backward, 120, SkipCause::MshrFill);
        consider(&mut backward, 120, SkipCause::PipeEvent);
        assert_eq!(forward, backward);
        assert_eq!(forward, (120, SkipCause::PipeEvent));
    }

    #[test]
    fn earlier_cycle_beats_cause_priority() {
        let mut best = (u64::MAX, SkipCause::LimitCap);
        consider(&mut best, 500, SkipCause::PipeEvent);
        consider(&mut best, 200, SkipCause::StoreBuffer);
        assert_eq!(best, (200, SkipCause::StoreBuffer));
        // A later term never displaces an earlier one.
        consider(&mut best, 300, SkipCause::PipeEvent);
        assert_eq!(best, (200, SkipCause::StoreBuffer));
    }

    #[test]
    fn park_and_unpark_track_the_mask() {
        let mut e = SkipEngine::new();
        assert!(!e.is_parked(2));
        e.park(
            2,
            ParkCert {
                horizon: 400,
                ..ParkCert::default()
            },
        );
        assert!(e.is_parked(2));
        assert_eq!(e.certs[2].horizon, 400);
        assert_eq!(e.stats.parks, 1);
        e.park(5, ParkCert::default());
        assert_eq!(e.parked, (1 << 2) | (1 << 5));
        // Bulk revocation by wake mask, as the revocation pass does it.
        e.parked &= !(1 << 2);
        assert!(!e.is_parked(2));
        assert!(e.is_parked(5));
        e.unpark_all();
        assert_eq!(e.parked, 0);
    }
}
