//! The cycle-level SMT out-of-order core with the hybrid shelf window.
//!
//! One [`Core`] simulates fetch → decode/steer → rename/dispatch → issue →
//! execute → writeback → commit over a set of per-thread trace sources,
//! implementing every mechanism of paper §III:
//!
//! * per-thread FIFO **shelf** whose instructions skip ROB/IQ/LSQ/PRF
//!   allocation;
//! * **issue-tracking bitvectors** establishing in-order issue across the
//!   two queues (Figure 4), with conservative/optimistic same-cycle issue;
//! * the **speculation shift register pair** delaying shelf writebacks past
//!   the commit point (Figure 5);
//! * **shelf squash indices** and the **shelf retire pointer** coordinating
//!   misspeculation recovery and ROB retirement with a 2× virtual shelf
//!   index space;
//! * the **tag-space extension** letting shelf instructions overwrite live
//!   physical registers while the IQ wakes up unambiguously (Figures 6–8);
//! * **relaxed-memory LSQ** semantics: shelf memory ops hold no LQ/SQ
//!   entries, scan the queues associatively, forward, coalesce, and squash
//!   violating loads moderated by a store-sets predictor (§III-D).

use crate::classify::Classifier;
use crate::config::{CoreConfig, FetchPolicy, MemoryModel, SteerPolicy};
use crate::counters::{acc, Counters, LocalStall};
use crate::inst::{InstId, Slab, Slot, Stage, Steer};
use crate::skip::{
    consider, ParkCert, ParkDispatch, ParkIssue, ProbePhase, ProbeRecord, SkipCause, SkipEngine,
    SkipStats, StableSnapshot, ThreadLens, MAX_SKIP_THREADS, MIN_PARK_JUMP_SPAN,
};
use crate::steer::{OracleSteer, PracticalSteer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use shelfsim_isa::{ArchReg, DynInst, FuKind, MemInfo, OpClass};
use shelfsim_mem::{Hierarchy, Level};
use shelfsim_trace::{EndKind, Lifecycle, OccupancySample, QueueKind, StallCause, Tracer};
use shelfsim_uarch::{
    BranchPredictor, BranchPredictorConfig, FreeList, Icount, IssueTracker, Mapping, OrderedQueue,
    PhysReg, RenameTable, Scoreboard, SsrPair, StoreSets, Tag,
};
use shelfsim_workload::TraceSource;
use std::collections::{BinaryHeap, VecDeque};

/// Consecutive data-blocked cycles at a shelf head after which the thread's
/// steering falls back to the IQ until the head drains.
const HEAD_THROTTLE_CYCLES: u32 = 8;

/// Minimum issue-to-writeback latency of an operation (the value compared
/// against the shelf SSR; loads writeback no earlier than an L1 hit).
fn min_writeback_latency(op: OpClass) -> u32 {
    match op {
        OpClass::Load => 2,
        _ => op.latency(),
    }
}

#[derive(PartialEq, Eq)]
struct Event {
    cycle: u64,
    age: u64,
    id: InstId,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (cycle, age): elder instructions' writebacks (and thus
        // squashes) are processed before younger same-cycle writebacks, so a
        // misspeculation always marks in-flight younger shelf instructions
        // squashed before they attempt to retire.
        other.cycle.cmp(&self.cycle).then(other.age.cmp(&self.age))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Ring size of the event calendar. Completion cycles land within this
/// horizon of `now` in all but degenerate cases; the rest wait in an
/// overflow heap.
const EVENT_WHEEL_BUCKETS: usize = 1024;

/// Calendar queue of pending writeback events: O(1) insertion into a
/// per-cycle bucket instead of a binary-heap reshuffle on every push and
/// pop. The per-cycle drain sorts the (tiny) due bucket by age, matching
/// the elder-first processing order the heap's `(cycle, age)` key gave.
struct EventWheel {
    /// `buckets[c % EVENT_WHEEL_BUCKETS]` holds the events due at cycle `c`
    /// for cycles inside the horizon.
    buckets: Vec<Vec<Event>>,
    /// Events scheduled at or beyond `now + EVENT_WHEEL_BUCKETS`.
    overflow: BinaryHeap<Event>,
    len: usize,
}

impl EventWheel {
    fn new() -> Self {
        EventWheel {
            buckets: (0..EVENT_WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::with_capacity(16),
            len: 0,
        }
    }

    /// Schedules `ev` as of cycle `now`. Events dated `now` or earlier are
    /// clamped to `now + 1` (the heap equivalently fired them on the next
    /// drain). The strict `<` horizon check keeps the bucket currently
    /// being drained out of reach of re-entrant pushes.
    fn push(&mut self, now: u64, mut ev: Event) {
        ev.cycle = ev.cycle.max(now + 1);
        self.len += 1;
        if ev.cycle - now < EVENT_WHEEL_BUCKETS as u64 {
            self.buckets[(ev.cycle as usize) % EVENT_WHEEL_BUCKETS].push(ev);
        } else {
            self.overflow.push(ev);
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Drains every event due at exactly `now` into `out` as `(age, id)`
    /// pairs. Must be called once per cycle so a bucket never wraps around
    /// with stale entries.
    fn drain_due(&mut self, now: u64, out: &mut Vec<(u64, InstId)>) {
        let idx = (now as usize) % EVENT_WHEEL_BUCKETS;
        let mut bucket = std::mem::take(&mut self.buckets[idx]);
        for ev in bucket.drain(..) {
            debug_assert_eq!(ev.cycle, now);
            out.push((ev.age, ev.id));
            self.len -= 1;
        }
        self.buckets[idx] = bucket;
        while let Some(ev) = self.overflow.peek() {
            if ev.cycle > now {
                break;
            }
            let ev = self.overflow.pop().expect("peeked");
            out.push((ev.age, ev.id));
            self.len -= 1;
        }
    }

    /// Earliest pending event cycle at or after `now`, if any. The memory/
    /// pipeline side of the engine's event-horizon computation: nothing in
    /// this wheel can fire strictly before the returned cycle. Every bucket
    /// entry lies in `[now, now + EVENT_WHEEL_BUCKETS)` (pushes clamp to
    /// `push_now + 1` and per-cycle drains empty past buckets), so a single
    /// forward scan finds the earliest bucket; the overflow heap's peek is
    /// its minimum (the `Event` ordering is reversed for min-heap behavior).
    fn next_due(&self, now: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<u64> = self.overflow.peek().map(|ev| ev.cycle);
        for off in 0..EVENT_WHEEL_BUCKETS as u64 {
            let c = now + off;
            if !self.buckets[(c as usize) % EVENT_WHEEL_BUCKETS].is_empty() {
                best = Some(best.map_or(c, |b| b.min(c)));
                break;
            }
        }
        best
    }
}

/// Per-thread architectural and microarchitectural state.
struct Thread {
    trace: TraceSource,
    rat: RenameTable,
    rob: OrderedQueue<InstId>,
    lq: OrderedQueue<InstId>,
    sq: OrderedQueue<InstId>,
    /// Shelf entries (physical storage); indices are allocated separately.
    shelf: VecDeque<InstId>,
    shelf_capacity: usize,
    /// Monotonic shelf index allocator (the virtual index space).
    shelf_next_idx: u64,
    /// Shelf retire bitvector: `shelf_retired[i]` covers index
    /// `shelf_retire_ptr + i`.
    shelf_retired: VecDeque<bool>,
    /// Oldest shelf index not yet written back (the shelf retire pointer).
    shelf_retire_ptr: u64,
    /// All renamed, not-yet-committed instructions in program order.
    window: VecDeque<InstId>,
    /// Fetch-to-dispatch pipe.
    frontend: VecDeque<InstId>,
    issue_tracker: IssueTracker,
    /// Tracker head captured at the start of the cycle (conservative mode).
    tracker_head_snapshot: u64,
    ssr: SsrPair,
    store_sets: StoreSets,
    /// In-flight stores as `(age, id)`, sorted ascending by age (store-set
    /// tokens). Dispatch ages are per-thread monotonic, so `push_back`
    /// maintains the order; store-set scans walk oldest-first and stop at
    /// the querying load's age.
    inflight_stores: VecDeque<(u64, InstId)>,
    /// Recently issued shelf loads, scanned by store violation checks
    /// (shelf loads hold no LQ entry).
    recent_shelf_loads: VecDeque<(InstId, u64)>,
    /// Ages of issued-but-incomplete loads, sorted ascending (TSO: shelf
    /// writebacks must wait for all elder loads to complete, §III-D).
    inflight_loads: Vec<u64>,
    bpred: BranchPredictor,
    practical: PracticalSteer,
    oracle: OracleSteer,
    /// Shadow oracle for mis-steer measurement under the practical policy.
    shadow_oracle: OracleSteer,
    classifier: Classifier,
    /// Steering decisions that disagreed with the shadow oracle.
    missteers: u64,
    /// Steering decisions compared.
    steer_decisions: u64,
    /// Thread cannot fetch until this cycle (I-miss, redirect).
    fetch_stalled_until: u64,
    /// Mispredicted branch blocking correct-path fetch.
    waiting_branch: Option<InstId>,
    wrong_path_rng: SmallRng,
    /// Post-commit store buffer: (address, earliest drain cycle).
    store_buffer: VecDeque<(u64, u64)>,
    /// Instructions in the front end + dispatched-but-unissued (ICOUNT).
    pre_issue_count: usize,
    /// Committed instruction count (real, architectural).
    committed: u64,
    /// Steering of the previously dispatched instruction (run detection).
    last_steer: Option<Steer>,
    /// Committed shelf instructions that were still marked `Completed` when
    /// a squash walked past them (must stay 0; see `squash_thread`).
    late_shelf_commits: u64,
    /// Consecutive cycles the current shelf head has been blocked on data.
    head_blocked_streak: u32,
    /// The shelf head the streak refers to.
    head_blocked_id: Option<InstId>,
}

impl Thread {
    fn shelf_index_space(&self, narrow: bool) -> u64 {
        if narrow {
            self.shelf_capacity as u64
        } else {
            2 * self.shelf_capacity as u64
        }
    }

    /// Advance the shelf retire pointer over contiguously retired indices.
    fn advance_shelf_retire(&mut self) {
        while self.shelf_retired.front() == Some(&true) {
            self.shelf_retired.pop_front();
            self.shelf_retire_ptr += 1;
        }
    }

    fn mark_shelf_retired(&mut self, idx: u64) {
        debug_assert!(idx >= self.shelf_retire_ptr);
        let off = (idx - self.shelf_retire_ptr) as usize;
        debug_assert!(
            off < self.shelf_retired.len(),
            "retiring unallocated shelf index"
        );
        self.shelf_retired[off] = true;
        self.advance_shelf_retire();
    }

    /// Drops the in-flight store with dispatch age `age` (no-op if absent).
    fn remove_inflight_store(&mut self, age: u64) {
        let (a, b) = self.inflight_stores.as_slices();
        let pos = match a.binary_search_by_key(&age, |&(g, _)| g) {
            Ok(p) => Ok(p),
            Err(_) => b
                .binary_search_by_key(&age, |&(g, _)| g)
                .map(|p| a.len() + p),
        };
        if let Ok(p) = pos {
            self.inflight_stores.remove(p);
        }
    }

    /// Records an issued-but-incomplete load (TSO ordering watch).
    fn add_inflight_load(&mut self, age: u64) {
        let pos = self.inflight_loads.binary_search(&age).unwrap_err();
        self.inflight_loads.insert(pos, age);
    }

    /// Drops a completed load from the in-flight set (no-op if absent).
    fn remove_inflight_load(&mut self, age: u64) {
        if let Ok(p) = self.inflight_loads.binary_search(&age) {
            self.inflight_loads.remove(p);
        }
    }
}

/// A per-instruction lifecycle record emitted at commit (the analogue of
/// gem5's O3 pipeline-viewer traces), for debugging and the CLI `trace`
/// command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Hardware thread.
    pub thread: usize,
    /// Trace sequence number.
    pub seq: u64,
    /// Static PC.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Which queue the instruction went through.
    pub steer: Steer,
    /// Classified in-sequence at issue.
    pub in_sequence: bool,
    /// Fetch cycle.
    pub fetch: u64,
    /// Dispatch cycle.
    pub dispatch: u64,
    /// Issue cycle.
    pub issue: u64,
    /// Writeback cycle.
    pub complete: u64,
    /// Commit cycle.
    pub commit: u64,
}

/// One architecturally committed (correct-path) instruction, as emitted by
/// the commit observer for lockstep differential validation (see the
/// `shelfsim-validate` crate). Unlike [`CommitRecord`] — a timing-oriented
/// debugging record — this carries the full decoded [`DynInst`] so a
/// functional reference model can replay the exact architectural stream:
/// PC, operation, registers, memory address, and branch outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommitEvent {
    /// Hardware thread.
    pub thread: usize,
    /// Trace sequence number (consecutive per thread on the correct path).
    pub seq: u64,
    /// The decoded dynamic instruction exactly as fetched.
    pub inst: DynInst,
    /// Commit cycle.
    pub cycle: u64,
}

/// Which seeded semantic mutation the `chaos` build injects (mutation
/// testing of the validation harness: each of these must be *caught* by
/// `shelfsim validate` — see `docs/MECHANISMS.md` §14).
#[cfg(feature = "chaos")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosKind {
    /// Silently drop one committed instruction's observer event, as if its
    /// writeback never architecturally happened.
    SkipWriteback,
    /// Hold one commit event and emit it *after* the next same-thread
    /// commit — an out-of-order retirement.
    CommitOutOfOrder,
    /// Flip an address bit in one committed store's memory info — a
    /// corrupted store value/address.
    CorruptStoreValue,
    /// Emit one squashed (but correct-path-tagged) victim as a phantom
    /// commit — a squash that failed to kill its instruction.
    DropSquash,
    /// Silently drop *all* of one thread's due pipeline events for a cycle
    /// — the partial-skip failure mode where a parked thread's wake-up is
    /// missed and its tick effectively skipped. The lost writebacks wedge
    /// the thread.
    SkipThreadTick,
}

#[cfg(feature = "chaos")]
impl ChaosKind {
    /// Every shipped mutation, in a stable order (the "shipped chaos set"
    /// the mutation-kill regression test iterates).
    pub const ALL: [ChaosKind; 5] = [
        ChaosKind::SkipWriteback,
        ChaosKind::CommitOutOfOrder,
        ChaosKind::CorruptStoreValue,
        ChaosKind::DropSquash,
        ChaosKind::SkipThreadTick,
    ];

    /// Stable CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosKind::SkipWriteback => "skip-writeback",
            ChaosKind::CommitOutOfOrder => "commit-out-of-order",
            ChaosKind::CorruptStoreValue => "corrupt-store-value",
            ChaosKind::DropSquash => "drop-squash",
            ChaosKind::SkipThreadTick => "skip-thread-tick",
        }
    }

    /// Parses a CLI name (the inverse of [`ChaosKind::as_str`]).
    pub fn by_name(name: &str) -> Option<ChaosKind> {
        ChaosKind::ALL.into_iter().find(|k| k.as_str() == name)
    }
}

/// A seeded mutation: inject `kind` at the `trigger`-th eligible event
/// (0-based; eligibility is kind-specific — commits for the first two,
/// committed stores for `CorruptStoreValue`, squash victims for
/// `DropSquash`).
#[cfg(feature = "chaos")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Which mutation to inject.
    pub kind: ChaosKind,
    /// Zero-based index of the eligible event to mutate.
    pub trigger: u64,
}

#[cfg(feature = "chaos")]
#[derive(Debug)]
struct ChaosState {
    plan: ChaosPlan,
    /// Eligible events seen so far (the trigger counter).
    seen: u64,
    /// Whether the mutation has been injected.
    fired: bool,
    /// Held-back event for [`ChaosKind::CommitOutOfOrder`].
    held: Option<CommitEvent>,
}

/// Occupancy snapshot of one thread's pipeline structures, taken when the
/// forward-progress watchdog aborts a run (see
/// [`crate::sim::DeadlockReport`]) or on demand via
/// [`Core::thread_occupancy`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadOccupancy {
    /// Hardware thread index.
    pub thread: usize,
    /// Instructions committed so far (whole run).
    pub committed: u64,
    /// ROB entries occupied.
    pub rob: usize,
    /// Load-queue entries occupied.
    pub lq: usize,
    /// Store-queue entries occupied.
    pub sq: usize,
    /// Shelf entries occupied.
    pub shelf: usize,
    /// Instructions in the in-order window (dispatched, pre-commit).
    pub window: usize,
    /// Frontend (fetch-to-dispatch) buffer occupancy.
    pub frontend: usize,
    /// Cycle until which fetch is stalled (0 = not stalled).
    pub fetch_stalled_until: u64,
}

/// The simulated core.
pub struct Core {
    cfg: CoreConfig,
    now: u64,
    slab: Slab,
    hierarchy: Hierarchy,
    /// Event counters (resettable for warm-up).
    pub counters: Counters,
    next_age: u64,
    threads: Vec<Thread>,
    /// Shared unordered issue queue (instruction ids).
    iq: Vec<InstId>,
    phys_fl: FreeList,
    ext_fl: FreeList,
    scoreboard: Scoreboard,
    /// Which cluster (queue) produced each tag's value, for the optional
    /// clustered-backend forwarding penalty.
    tag_cluster: Vec<Steer>,
    icount: Icount,
    /// Round-robin fetch rotation state.
    fetch_rr: usize,
    /// Per functional-unit-kind busy-until cycles.
    fu_busy: [Vec<u64>; 4],
    events: EventWheel,
    /// Ring buffer of recent commit records (empty unless enabled).
    commit_log: VecDeque<CommitRecord>,
    commit_log_capacity: usize,
    /// Queued [`CommitEvent`]s awaiting [`Core::drain_commit_events`]
    /// (empty unless the commit observer is enabled).
    commit_events: VecDeque<CommitEvent>,
    /// Whether the commit observer is on. Off by default: the commit path
    /// pays exactly one branch, verified against the bench baseline.
    commit_observer: bool,
    /// Seeded semantic fault injection for mutation-testing the validation
    /// harness (`--features chaos` only).
    #[cfg(feature = "chaos")]
    chaos: Option<ChaosState>,
    /// Pipeline observability (lifecycle trace, occupancy sampling, stall
    /// attribution). `None` in normal runs: each stage pays exactly one
    /// `Option` check, verified against the committed bench baseline.
    tracer: Option<Box<Tracer>>,
    /// Per-tag wakeup consumer lists: IQ entries `(id, age)` registered at
    /// dispatch because the tag's producer had not yet broadcast. Drained
    /// at the tag's broadcast; stale entries (squashed consumers) are
    /// filtered by the age check then.
    tag_consumers: Vec<Vec<(InstId, u64)>>,
    /// IQ entries with `pending_srcs > 0` — the population the wakeup CAM
    /// actually compares on each broadcast.
    iq_waiting: usize,
    /// Calendar queue of IQ entries whose sources become ready at a known
    /// future cycle; drained into [`Self::ready_pool`] each cycle so the
    /// select scan never walks the whole IQ.
    ready_wheel: EventWheel,
    /// Data-ready but not-yet-issued IQ entries `(age, id)`, compacted and
    /// kept age-sorted once per cycle. Stale entries (issued, squashed, or
    /// recycled ids) are dropped at compaction time.
    ready_pool: Vec<(u64, InstId)>,
    /// Persistent scratch buffers (reused across cycles to keep the hot
    /// loop allocation-free).
    scratch_squash: Vec<InstId>,
    scratch_mshr_losers: Vec<InstId>,
    scratch_counts: Vec<usize>,
    scratch_eligible: Vec<bool>,
    /// Event-driven cycle skipping (probe state + accounting); see
    /// [`crate::skip`]. Runtime-toggleable, on by default, used only via
    /// [`Core::tick_bounded`] — plain [`Core::tick`] never skips.
    skip: SkipEngine,
}

impl Core {
    /// Builds a core running `traces` (one per hardware thread).
    ///
    /// # Panics
    ///
    /// Panics if the trace count does not match `cfg.threads` or the
    /// configuration is invalid.
    pub fn new(cfg: CoreConfig, traces: Vec<TraceSource>) -> Self {
        cfg.validate();
        assert_eq!(traces.len(), cfg.threads, "one trace per hardware thread");
        let num_phys = cfg.num_phys_regs();
        let num_arch = shelfsim_isa::NUM_ARCH_REGS;

        // Architectural registers of thread t occupy physical registers
        // [t*num_arch, (t+1)*num_arch); the remainder form the shared rename
        // pool managed by the physical free list.
        let mut threads = Vec::with_capacity(cfg.threads);
        for (t, trace) in traces.into_iter().enumerate() {
            let base = (t * num_arch) as u32;
            threads.push(Thread {
                trace,
                rat: RenameTable::new(|i| {
                    let p = PhysReg(base + i as u32);
                    Mapping {
                        pri: p,
                        tag: p.as_tag(),
                    }
                }),
                rob: OrderedQueue::new(cfg.rob_per_thread()),
                lq: OrderedQueue::new(cfg.lq_per_thread()),
                sq: OrderedQueue::new(cfg.sq_per_thread()),
                shelf: VecDeque::new(),
                shelf_capacity: cfg.shelf_per_thread(),
                shelf_next_idx: 0,
                shelf_retired: VecDeque::new(),
                shelf_retire_ptr: 0,
                window: VecDeque::new(),
                frontend: VecDeque::new(),
                issue_tracker: IssueTracker::new(),
                tracker_head_snapshot: 0,
                ssr: SsrPair::new(cfg.single_ssr),
                store_sets: StoreSets::new(1024, 64),
                inflight_stores: VecDeque::new(),
                recent_shelf_loads: VecDeque::new(),
                inflight_loads: Vec::new(),
                bpred: BranchPredictor::new(BranchPredictorConfig {
                    kind: cfg.predictor,
                    ..BranchPredictorConfig::default()
                }),
                practical: PracticalSteer::new(cfg.rct_bits, cfg.plt_columns),
                oracle: OracleSteer::new(),
                shadow_oracle: OracleSteer::new(),
                classifier: Classifier::new(),
                missteers: 0,
                steer_decisions: 0,
                fetch_stalled_until: 0,
                waiting_branch: None,
                wrong_path_rng: SmallRng::seed_from_u64(0xDEAD ^ t as u64),
                store_buffer: VecDeque::new(),
                pre_issue_count: 0,
                committed: 0,
                last_steer: None,
                late_shelf_commits: 0,
                head_blocked_streak: 0,
                head_blocked_id: None,
            });
        }

        // The free list spans the whole PRF; the registers holding the
        // initial architectural state start out allocated and return to the
        // pool when their mapping is superseded and retired.
        let arch_regs = (cfg.threads * num_arch) as u32;
        let mut phys_fl = FreeList::new(0, num_phys as u32);
        for i in 0..arch_regs {
            let got = phys_fl
                .allocate()
                .expect("PRF sized for architectural state");
            assert_eq!(got, i, "architectural registers occupy the low PRF indices");
        }
        let ext_fl = FreeList::new(num_phys as u32, cfg.num_ext_tags() as u32);
        let num_tags = cfg.num_tags();
        let iq_capacity = cfg.iq_entries;

        Core {
            fu_busy: [
                vec![0; cfg.fu_int_alu],
                vec![0; cfg.fu_int_muldiv],
                vec![0; cfg.fu_fp],
                vec![0; cfg.fu_mem_ports],
            ],
            hierarchy: Hierarchy::new(cfg.hierarchy),
            cfg,
            now: 0,
            slab: Slab::new(),
            counters: Counters::new(),
            next_age: 0,
            iq: Vec::with_capacity(iq_capacity),
            threads,
            phys_fl,
            ext_fl,
            scoreboard: Scoreboard::new(num_tags),
            tag_cluster: vec![Steer::Iq; num_tags],
            icount: Icount::new(),
            fetch_rr: 0,
            events: EventWheel::new(),
            commit_log: VecDeque::new(),
            commit_log_capacity: 0,
            commit_events: VecDeque::new(),
            commit_observer: false,
            #[cfg(feature = "chaos")]
            chaos: None,
            tracer: None,
            tag_consumers: vec![Vec::new(); num_tags],
            iq_waiting: 0,
            ready_wheel: EventWheel::new(),
            ready_pool: Vec::new(),
            scratch_squash: Vec::new(),
            scratch_mshr_losers: Vec::new(),
            scratch_counts: Vec::new(),
            scratch_eligible: Vec::new(),
            skip: SkipEngine::new(),
        }
    }

    /// Enables the commit log: the last `capacity` committed instructions'
    /// lifecycle records are retained (see [`CommitRecord`]).
    pub fn enable_commit_log(&mut self, capacity: usize) {
        self.commit_log_capacity = capacity;
        self.commit_log = VecDeque::with_capacity(capacity);
    }

    /// The retained commit records, oldest first.
    pub fn commit_log(&self) -> impl Iterator<Item = &CommitRecord> {
        self.commit_log.iter()
    }

    /// Enables pipeline tracing: the last `window` instruction lifecycles
    /// and occupancy samples are retained (one sample every `sample_every`
    /// cycles), and per-thread dispatch/issue stall attribution is tallied
    /// every cycle. See [`shelfsim_trace::Tracer`] for the event model and
    /// drop policy.
    pub fn enable_tracer(&mut self, window: usize, sample_every: u64) {
        self.tracer = Some(Box::new(
            Tracer::new(self.cfg.threads, window).with_sampling(sample_every),
        ));
    }

    /// The tracer, if enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// The tracer, if enabled (mutable; e.g. to reset it at a measurement
    /// boundary).
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }

    /// Records an instruction's end of life (commit or squash) into the
    /// tracer. A no-op when tracing is off or for synthetic wrong-path
    /// instructions; frontend-stage instructions never made a steering
    /// decision and are not recorded (see the `shelfsim-trace` event
    /// model).
    #[inline]
    fn trace_end(&mut self, id: InstId, end_kind: EndKind) {
        let Some(tracer) = self.tracer.as_deref_mut() else {
            return;
        };
        let s = self.slab.get(id);
        if s.wrong_path {
            return;
        }
        let (issue, writeback) = match self.slab.stage(id) {
            Stage::Frontend => return,
            Stage::Dispatched => (None, None),
            Stage::Issued => (Some(s.issue_cycle), None),
            Stage::Completed | Stage::Retired => (Some(s.issue_cycle), Some(s.complete_cycle)),
        };
        tracer.record(Lifecycle {
            thread: s.thread as u8,
            seq: s.seq,
            pc: s.inst.pc,
            op: s.inst.op,
            queue: match s.steer {
                Steer::Iq => QueueKind::Iq,
                Steer::Shelf => QueueKind::Shelf,
            },
            fetch: s.fetch_cycle,
            dispatch: s.dispatch_cycle,
            issue,
            writeback,
            end: self.now,
            end_kind,
        });
    }

    fn record_commit(&mut self, id: InstId) {
        if self.commit_log_capacity == 0 {
            return;
        }
        let s = self.slab.get(id);
        if self.commit_log.len() == self.commit_log_capacity {
            self.commit_log.pop_front();
        }
        self.commit_log.push_back(CommitRecord {
            thread: s.thread,
            seq: s.seq,
            pc: s.inst.pc,
            op: s.inst.op,
            steer: s.steer,
            in_sequence: s.in_sequence,
            fetch: s.fetch_cycle,
            dispatch: s.dispatch_cycle,
            issue: s.issue_cycle,
            complete: s.complete_cycle,
            commit: self.now,
        });
    }

    /// Enables the commit observer: every correct-path commit is queued as
    /// a [`CommitEvent`] until drained with [`Core::drain_commit_events`].
    /// The caller must drain regularly or the queue grows unboundedly.
    pub fn enable_commit_observer(&mut self) {
        self.commit_observer = true;
    }

    /// Moves every queued commit event into `out` (in commit order,
    /// interleaved across threads), clearing the internal queue.
    pub fn drain_commit_events(&mut self, out: &mut Vec<CommitEvent>) {
        out.extend(self.commit_events.drain(..));
    }

    /// The next trace sequence number thread `t` will fetch (used by the
    /// validation harness to align its reference stream after warm-up).
    pub fn next_fetch_seq(&self, t: usize) -> u64 {
        self.threads[t].trace.next_fetch_seq()
    }

    /// Arms a seeded semantic mutation (mutation testing of the validation
    /// harness; see [`ChaosPlan`]). Only present under `--features chaos`.
    #[cfg(feature = "chaos")]
    pub fn enable_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = Some(ChaosState {
            plan,
            seen: 0,
            fired: false,
            held: None,
        });
    }

    /// Whether the armed mutation has actually been injected (a detection
    /// test is only meaningful when this is `true`).
    #[cfg(feature = "chaos")]
    pub fn chaos_fired(&self) -> bool {
        self.chaos.as_ref().is_some_and(|c| c.fired)
    }

    /// Queues a [`CommitEvent`] for a committing correct-path instruction.
    /// One branch when the observer is off.
    #[inline]
    fn observe_commit(&mut self, id: InstId) {
        if !self.commit_observer {
            return;
        }
        let s = self.slab.get(id);
        let ev = CommitEvent {
            thread: s.thread,
            seq: s.seq,
            inst: s.inst,
            cycle: self.now,
        };
        self.push_commit_event(ev);
    }

    #[cfg(not(feature = "chaos"))]
    #[inline]
    fn push_commit_event(&mut self, ev: CommitEvent) {
        self.commit_events.push_back(ev);
    }

    /// The chaos build routes every observer event through the armed
    /// mutation (if any): drop it, hold-and-swap it, or corrupt it.
    #[cfg(feature = "chaos")]
    fn push_commit_event(&mut self, mut ev: CommitEvent) {
        let mut emit_after: Option<CommitEvent> = None;
        if let Some(ch) = self.chaos.as_mut() {
            match ch.plan.kind {
                ChaosKind::SkipWriteback => {
                    if !ch.fired {
                        let n = ch.seen;
                        ch.seen += 1;
                        if n == ch.plan.trigger {
                            ch.fired = true;
                            return; // the event vanishes
                        }
                    }
                }
                ChaosKind::CommitOutOfOrder => {
                    if let Some(held) = ch.held.take() {
                        if held.thread == ev.thread {
                            // Emit the younger instruction first, then the
                            // held elder: a same-thread order inversion.
                            emit_after = Some(held);
                        } else {
                            ch.held = Some(held); // keep waiting
                        }
                    } else if !ch.fired {
                        let n = ch.seen;
                        ch.seen += 1;
                        if n == ch.plan.trigger {
                            ch.fired = true;
                            ch.held = Some(ev);
                            return; // emitted after the next same-thread event
                        }
                    }
                }
                ChaosKind::CorruptStoreValue => {
                    if !ch.fired && ev.inst.is_store() {
                        let n = ch.seen;
                        ch.seen += 1;
                        if n == ch.plan.trigger {
                            ch.fired = true;
                            if let Some(m) = ev.inst.mem.as_mut() {
                                m.addr ^= 0x40;
                            }
                        }
                    }
                }
                ChaosKind::DropSquash => {} // injected in squash_window_from
                ChaosKind::SkipThreadTick => {} // injected in process_events
            }
        }
        self.commit_events.push_back(ev);
        if let Some(h) = emit_after {
            self.commit_events.push_back(h);
        }
    }

    /// [`ChaosKind::DropSquash`]: the `trigger`-th squash victim (counting
    /// wrong-path instructions — a busted squash would leak those too)
    /// escapes the squash and shows up as a phantom commit event.
    #[cfg(feature = "chaos")]
    fn chaos_on_squash_victim(&mut self, id: InstId) {
        if !self.commit_observer
            || self
                .chaos
                .as_ref()
                .is_none_or(|c| c.plan.kind != ChaosKind::DropSquash || c.fired)
        {
            return;
        }
        let s = self.slab.get(id);
        let ev = CommitEvent {
            thread: s.thread,
            seq: s.seq,
            inst: s.inst,
            cycle: self.now,
        };
        let ch = self.chaos.as_mut().expect("checked above");
        let n = ch.seen;
        ch.seen += 1;
        if n == ch.plan.trigger {
            ch.fired = true;
            self.commit_events.push_back(ev);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The memory hierarchy (for cache statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Committed instruction count of thread `t`.
    pub fn committed(&self, t: usize) -> u64 {
        self.threads[t].committed
    }

    /// Shared-IQ occupancy (instruction ids currently waiting in the
    /// unordered issue queue, across all threads).
    pub fn iq_len(&self) -> usize {
        self.iq.len()
    }

    /// Structured occupancy snapshot of every thread's queues, for deadlock
    /// diagnosis (see [`crate::sim::DeadlockReport`]).
    pub fn thread_occupancy(&self) -> Vec<ThreadOccupancy> {
        self.threads
            .iter()
            .enumerate()
            .map(|(t, th)| ThreadOccupancy {
                thread: t,
                committed: th.committed,
                rob: th.rob.len(),
                lq: th.lq.len(),
                sq: th.sq.len(),
                shelf: th.shelf.len(),
                window: th.window.len(),
                frontend: th.frontend.len(),
                fetch_stalled_until: th.fetch_stalled_until,
            })
            .collect()
    }

    /// One-line debug snapshot of thread `t`'s pipeline occupancy.
    pub fn debug_state(&self, t: usize) -> String {
        let th = &self.threads[t];
        format!(
            "t{} now={} fe={} win={} iq={} shelf={} rob={} stall_until={} wb={:?} preissue={} events={} shelf_idx={}..{} retired_window={:?}",
            t,
            self.now,
            th.frontend.len(),
            th.window.len(),
            self.iq.len(),
            th.shelf.len(),
            th.rob.len(),
            th.fetch_stalled_until,
            th.waiting_branch,
            th.pre_issue_count,
            self.events.len(),
            th.shelf_retire_ptr,
            th.shelf_next_idx,
            th.shelf_retired,
        )
    }

    /// Ages of the instructions currently blocking issue in thread `t`'s
    /// window head region (debugging aid).
    pub fn debug_window_head(&self, t: usize) -> String {
        let th = &self.threads[t];
        th.window
            .iter()
            .take(4)
            .map(|&id| {
                let s = self.slab.get(id);
                format!(
                    "[{:?} {:?} {:?} sq={} seq={}]",
                    s.inst.op,
                    s.steer,
                    self.slab.stage(id),
                    self.slab.is_squashed(id),
                    s.seq
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The per-thread classifier (in-sequence statistics).
    pub fn classifier(&self, t: usize) -> &Classifier {
        &self.threads[t].classifier
    }

    /// Finalizes per-thread classifier series (call once at the end of a
    /// measurement run).
    pub fn finish_classification(&mut self) {
        for t in &mut self.threads {
            t.classifier.finish();
        }
    }

    /// Mis-steer rate of thread `t` relative to the shadow oracle
    /// (meaningful under [`SteerPolicy::Practical`]).
    pub fn missteer_rate(&self, t: usize) -> f64 {
        let th = &self.threads[t];
        if th.steer_decisions == 0 {
            0.0
        } else {
            th.missteers as f64 / th.steer_decisions as f64
        }
    }

    /// Branch mispredict ratio of thread `t`.
    pub fn branch_mispredict_ratio(&self, t: usize) -> f64 {
        self.threads[t].bpred.mispredict_ratio()
    }

    /// Raw branch-predictor counters of thread `t`:
    /// `(lookups, mispredicts)`.
    pub fn bpred_counts(&self, t: usize) -> (u64, u64) {
        let b = &self.threads[t].bpred;
        (b.lookups, b.direction_mispredicts + b.target_mispredicts)
    }

    /// Count of shelf instructions that a squash had to skip because they
    /// had already committed; nonzero values indicate an SSR timing bug.
    pub fn late_shelf_commits(&self) -> u64 {
        self.threads.iter().map(|t| t.late_shelf_commits).sum()
    }

    /// Explicitly warms the caches with each thread's code and data
    /// footprint — the stand-in for the paper's 100M-instruction warm-up
    /// (cold compulsory misses would otherwise dominate short sampling
    /// windows). Warms the L2-resident data region, then code, then the
    /// L1-resident data region, leaving a realistic steady-state residency.
    pub fn warm_caches(&mut self) {
        let block = self.cfg.hierarchy.l1d.block_bytes as u64;
        for t in 0..self.threads.len() {
            let (code_start, code_end) = self.threads[t].trace.code_range();
            let regions = self.threads[t].trace.data_region_ranges();
            // L2-resident region (fills L2).
            let (l2s, l2e) = regions[1];
            let mut a = l2s;
            while a < l2e {
                self.hierarchy.warm_data(a);
                a += block;
            }
            // Code.
            let mut a = code_start;
            while a < code_end {
                self.hierarchy.warm_inst(a);
                a += block;
            }
            // L1-resident region last so it stays L1-resident.
            let (l1s, l1e) = regions[0];
            let mut a = l1s;
            while a < l1e {
                self.hierarchy.warm_data(a);
                a += block;
            }
        }
    }

    /// Functionally fast-forwards every thread by `insts` instructions,
    /// training the branch predictors and warming the caches without timing
    /// — the analogue of the paper's atomic-mode warm-up ("We warm
    /// microarchitectural structures for 100 million instructions"). The
    /// timed run continues from where the fast-forward stopped.
    pub fn warm_functional(&mut self, insts: u64) {
        for t in 0..self.threads.len() {
            for _ in 0..insts {
                let (_, inst) = self.threads[t].trace.fetch();
                self.hierarchy.warm_inst(inst.pc);
                if let Some(mem) = inst.mem {
                    self.hierarchy.warm_data(mem.addr);
                }
                if let Some(br) = inst.branch {
                    let bp = &mut self.threads[t].bpred;
                    let pred = bp.predict(inst.pc, br.is_return);
                    bp.update(
                        inst.pc,
                        pred,
                        br.taken,
                        br.next_pc,
                        br.is_call,
                        br.is_return,
                        inst.pc + 4,
                    );
                }
            }
        }
    }

    /// Advances the core by one cycle.
    pub fn tick(&mut self) {
        // Revoke stale park certificates first: `tick` must stay sound
        // when called directly (sim driver, tests) with threads still
        // parked from an earlier `tick_bounded` block. Inside
        // `tick_bounded` the loop already ran this pass, making this a
        // cheap no-op.
        if self.skip.parked != 0 {
            self.unpark_expired_and_due();
        }
        // Snapshot tracker heads for conservative same-cycle semantics.
        for t in &mut self.threads {
            t.tracker_head_snapshot = t.issue_tracker.head();
        }
        self.process_events();
        // Data-ready arrivals surface here, not in the issue stage, so a
        // ready operand due this cycle unparks its owner ahead of the
        // issue-stage classification replay. Hoisting the drain is free:
        // wheel pushes clamp to `now + 1`, so nothing a later stage pushes
        // this tick could have been due this tick anyway.
        let mut pool = std::mem::take(&mut self.ready_pool);
        let fresh = pool.len();
        self.ready_wheel.drain_due(self.now, &mut pool);
        if self.skip.parked != 0 {
            for &(age, id) in &pool[fresh..] {
                if self.slab.live_with_age(id, age) {
                    self.skip.parked &= !(1 << self.slab.thread_of(id));
                }
            }
        }
        self.ready_pool = pool;
        self.commit_stage();
        self.drain_store_buffers();
        self.issue_stage();
        self.dispatch_stage();
        self.fetch_stage();
        // Per-cycle state decay.
        for ti in 0..self.threads.len() {
            self.threads[ti].ssr.tick();
            if self.cfg.steer == SteerPolicy::Practical {
                let (th, sb) = (&mut self.threads[ti], &self.scoreboard);
                let rat = &th.rat;
                let now = self.now;
                th.practical.tick(|reg| sb.is_ready(rat.get(reg).tag, now));
                if th.pre_issue_count > th.frontend.len() {
                    // Dispatched-but-unissued elders exist: the earliest-
                    // allowable shelf issue cannot be "now".
                    th.practical.hold_issue_floor();
                }
            }
        }
        // Occupancy integrals (the paper's premise made measurable: the
        // shelf shifts in-flight occupancy out of the OOO structures).
        let mut occ = [0u64; 6];
        for th in &self.threads {
            occ[0] += th.rob.len() as u64;
            occ[2] += th.lq.len() as u64;
            occ[3] += th.sq.len() as u64;
            occ[4] += th.shelf.len() as u64;
        }
        occ[1] = self.iq.len() as u64;
        occ[5] = (self.phys_fl.capacity() - self.phys_fl.available()) as u64;
        for (total, v) in self.counters.occupancy.iter_mut().zip(occ) {
            acc(total, v);
        }
        if let Some(tracer) = self.tracer.as_deref_mut() {
            if tracer.wants_sample(self.now) {
                let frontend: usize = self.threads.iter().map(|th| th.frontend.len()).sum();
                tracer.sample(OccupancySample {
                    cycle: self.now,
                    rob: occ[0] as u32,
                    iq: occ[1] as u32,
                    lq: occ[2] as u32,
                    sq: occ[3] as u32,
                    shelf: occ[4] as u32,
                    prf: occ[5] as u32,
                    frontend: frontend as u32,
                });
            }
        }
        #[cfg(feature = "sanitize")]
        self.audit_invariants();
        self.now += 1;
        acc(&mut self.counters.cycles, 1);
    }

    // ------------------------------------------------------- cycle skipping

    /// Runtime toggle for event-driven cycle skipping (default on). Only
    /// [`Core::tick_bounded`] ever skips; plain [`Core::tick`] never does.
    /// Deliberately not a [`CoreConfig`] field: skipping is an engine
    /// execution strategy with no architectural effect.
    pub fn set_cycle_skipping(&mut self, on: bool) {
        self.skip.enabled = on;
        if !on {
            self.skip.phase = ProbePhase::Idle;
            self.skip.unpark_all();
        }
    }

    /// Whether event-driven cycle skipping is enabled.
    pub fn cycle_skipping(&self) -> bool {
        self.skip.enabled
    }

    /// Cycle-skip accounting for this run (see [`SkipStats`]).
    pub fn skip_stats(&self) -> &SkipStats {
        &self.skip.stats
    }

    /// Advances the core by exactly `limit` cycles, fast-forwarding provably
    /// idle spans via the probe-and-diff protocol and running *reduced
    /// ticks* while a subset of threads hold park certificates (see
    /// [`crate::skip`]). Bit-identical to `limit` calls of [`Core::tick`] —
    /// counters, commit stream, and trace tallies included. Returns the
    /// cycles advanced (always `limit`).
    pub fn tick_bounded(&mut self, limit: u64) -> u64 {
        if !self.skip.enabled || self.threads.len() > MAX_SKIP_THREADS {
            for _ in 0..limit {
                self.tick();
            }
            return limit;
        }
        let nthreads = self.threads.len();
        let full_mask: u64 = (1 << nthreads) - 1;
        let mut advanced = 0u64;
        // Horizon cache for the current all-parked window. The window only
        // runs reduced ticks strictly before the cached horizon, where by
        // definition nothing fires and no parked thread progresses, so
        // every `skip_horizon` term is static for the whole window and one
        // computation serves the entry gate, the jump-worthiness gate, and
        // the jump itself.
        let mut window: Option<(u64, SkipCause)> = None;
        while advanced < limit {
            // Revoke certificates whose horizon has arrived or whose
            // thread has work due this very cycle, *before* the tick that
            // would act on that work.
            if self.skip.parked != 0 {
                self.unpark_expired_and_due();
            }
            if self.skip.parked == full_mask {
                // Every thread holds a certificate, so the coming tick is a
                // whole-core fixed point by construction: one captured
                // reduced tick replaces the legacy arm/probe/probe warm-up
                // and the span jump fires immediately. But a jump only
                // repays its fixed costs (counter clones, stable snapshot,
                // scaled replay) over a long enough span — staggered
                // per-thread fills in SMT mixes open many short all-parked
                // windows where plain reduced ticks are cheaper — so the
                // probe capture is gated on the window horizon.
                let (horizon, cause) = *window.get_or_insert_with(|| self.skip_horizon());
                if horizon <= self.now {
                    // A wheel entry (or other horizon term) fires this very
                    // cycle, so the coming tick is not a fixed point: fall
                    // through to the normal path below (which resets the
                    // window cache), where the in-tick wheel drains wake the
                    // owners at full fidelity.
                } else {
                    let will_jump = horizon.saturating_sub(self.now + 1) >= MIN_PARK_JUMP_SPAN;
                    let pre = will_jump.then(|| (self.counters.clone(), self.hierarchy.counters()));
                    self.skip.progress = false;
                    self.skip.progress_mask = 0;
                    self.skip.streak_bumped = 0;
                    self.tick();
                    advanced += 1;
                    self.skip.stats.reduced_ticks += 1;
                    self.skip.stats.parked_thread_cycles += nthreads as u64;
                    self.skip.phase = ProbePhase::Idle;
                    if self.skip.progress {
                        // A certificate lied. The per-tick soundness net:
                        // revoke everything and fall back to tick-by-tick
                        // (the legacy probe pair re-proves any real fixed
                        // point from scratch).
                        self.skip.stats.park_aborts += 1;
                        self.skip.unpark_all();
                        window = None;
                        continue;
                    }
                    let Some((pre_c, pre_m)) = pre else {
                        // Short window: reduced ticks walk it cycle by cycle
                        // and the cached horizon stays valid until the
                        // revocation pass ends the window.
                        continue;
                    };
                    let rec = ProbeRecord {
                        end_cycle: self.now,
                        delta: self.counters.diff(&pre_c),
                        mem_delta: self.hierarchy.counters().diff(&pre_m),
                        snap: self.stable_snapshot(),
                        streak_bumped: self.skip.streak_bumped,
                    };
                    // Every certificate horizon term (fetch stall, frontend
                    // maturation, store-buffer drain, MSHR fill) is also a
                    // `skip_horizon` term with at-or-after-`now` semantics, so
                    // an expired certificate yields `k == 0` rather than a
                    // jump past its wake-up.
                    let budget = limit - advanced;
                    let mut k = horizon.saturating_sub(self.now);
                    let mut cause = cause;
                    if k > budget {
                        k = budget;
                        cause = SkipCause::LimitCap;
                    }
                    if k > 0 {
                        self.fast_forward(k, &rec, cause);
                        advanced += k;
                        self.skip.stats.park_jumps += 1;
                    }
                    // The jump lands on the horizon (or the budget cap): the
                    // window is over either way.
                    window = None;
                    continue;
                }
            }
            window = None;
            // Probe captures are lazy: a tick is instrumented with
            // pre-state clones only once the previous tick made no
            // progress, so the hot (progressing) path pays one branch.
            let pre = match self.skip.phase {
                ProbePhase::Idle => None,
                _ => Some((self.counters.clone(), self.hierarchy.counters())),
            };
            self.skip.progress = false;
            self.skip.progress_mask = 0;
            self.skip.streak_bumped = 0;
            self.tick();
            advanced += 1;
            let parked = self.skip.parked;
            if parked != 0 {
                self.skip.stats.reduced_ticks += 1;
                self.skip.stats.parked_thread_cycles += u64::from(parked.count_ones());
            }
            // Offer certificates to threads that sat completely still this
            // tick and aren't already parked.
            let idle = !(self.skip.progress_mask | parked) & full_mask;
            if idle != 0 {
                for t in 0..nthreads {
                    if idle & (1 << t) != 0 {
                        self.try_park(t);
                    }
                }
            }
            if self.skip.progress {
                self.skip.phase = ProbePhase::Idle;
                continue;
            }
            let Some((pre_c, pre_m)) = pre else {
                self.skip.phase = ProbePhase::Armed;
                continue;
            };
            let rec = ProbeRecord {
                end_cycle: self.now,
                delta: self.counters.diff(&pre_c),
                mem_delta: self.hierarchy.counters().diff(&pre_m),
                snap: self.stable_snapshot(),
                streak_bumped: self.skip.streak_bumped,
            };
            let prev = std::mem::replace(&mut self.skip.phase, ProbePhase::Idle);
            if let ProbePhase::Probed(p) = prev {
                if p.end_cycle + 1 == rec.end_cycle
                    && p.streak_bumped == rec.streak_bumped
                    && p.delta == rec.delta
                    && p.mem_delta == rec.mem_delta
                    && p.snap == rec.snap
                {
                    // Fixed point: every cycle up to the horizon repeats
                    // the probed cycle exactly.
                    let (horizon, mut cause) = self.skip_horizon();
                    let budget = limit - advanced;
                    let mut k = horizon.saturating_sub(self.now);
                    if k > budget {
                        k = budget;
                        cause = SkipCause::LimitCap;
                    }
                    if k > 0 {
                        self.fast_forward(k, &rec, cause);
                        advanced += k;
                    }
                    continue;
                }
                self.skip.stats.probe_mismatches += 1;
            }
            self.skip.phase = ProbePhase::Probed(Box::new(rec));
        }
        advanced
    }

    /// The per-tick certificate revocation pass: unparks any thread whose
    /// horizon has arrived. The event half of the park contract lives at
    /// the wheel drain points instead — `process_events` and the ready-
    /// wheel drain clear the owner's bit the moment a due entry surfaces,
    /// before any stage consults parked state — so this pass is a
    /// two-compare no-op until the cached earliest horizon arrives.
    fn unpark_expired_and_due(&mut self) {
        let now = self.now;
        if self.skip.revoked_at == now {
            return; // already ran for this cycle (loop-top + tick-top)
        }
        self.skip.revoked_at = now;
        if now < self.skip.next_horizon {
            return;
        }
        let mut wake = 0u64;
        let mut next = u64::MAX;
        for (t, cert) in self.skip.certs.iter().enumerate().take(self.threads.len()) {
            if self.skip.parked & (1 << t) != 0 {
                if cert.horizon <= now {
                    wake |= 1 << t;
                } else {
                    next = next.min(cert.horizon);
                }
            }
        }
        self.skip.parked &= !wake;
        self.skip.next_horizon = next;
    }

    /// Replays the dispatch-stage outcome for a parked thread's mature
    /// head: the certificate's (frozen) resource verdict, with the one
    /// shared input the real walk checks first — IQ occupancy — re-checked
    /// live. Counter bumps and stall causes match `try_dispatch` exactly.
    fn park_dispatch_mirror(&mut self, t: usize) -> DispatchOutcome {
        match self.skip.certs[t].dispatch {
            ParkDispatch::NoHead => {
                // The real loop's head/maturity pre-checks keep NoHead
                // certificates from ever reaching the mirror.
                debug_assert!(false, "dispatch mirror reached without a mature head");
                DispatchOutcome::Stalled(StallCause::NotReady)
            }
            ParkDispatch::Barrier => {
                self.counters.stalls.barrier += 1;
                DispatchOutcome::Stalled(StallCause::Barrier)
            }
            ParkDispatch::IqBlocked(local) => {
                if self.iq.len() >= self.cfg.iq_entries {
                    self.counters.stalls.iq_full += 1;
                    return DispatchOutcome::Stalled(StallCause::IqFull);
                }
                local.bump(&mut self.counters.stalls);
                DispatchOutcome::Stalled(match local {
                    LocalStall::RobFull => StallCause::RobFull,
                    LocalStall::LqFull | LocalStall::SqFull => StallCause::LsqFull,
                    LocalStall::ShelfFull | LocalStall::ShelfIndexFull => StallCause::ShelfFull,
                })
            }
            ParkDispatch::ShelfBlocked(local) => {
                local.bump(&mut self.counters.stalls);
                DispatchOutcome::Stalled(match local {
                    LocalStall::SqFull => StallCause::LsqFull,
                    _ => StallCause::ShelfFull,
                })
            }
        }
    }

    /// Whether thread `t`'s commit stage is provably a no-op for the whole
    /// park: nothing poppable at the TSO SQ head and the window head not
    /// committable. Blocked heads are fine — their `commit_stalls` bumps
    /// happen in the real (budget-gated) commit stage exactly as always.
    fn commit_frozen(&self, t: usize) -> bool {
        let th = &self.threads[t];
        if self.cfg.memory_model == MemoryModel::Tso {
            if let Some(&sq_head) = th.sq.front() {
                if self.slab.get(sq_head).steer == Steer::Shelf
                    && self.slab.stage(sq_head) == Stage::Completed
                    && !self.slab.is_squashed(sq_head)
                {
                    return false; // the SQ release loop would pop it
                }
            }
        }
        let Some(&head) = th.window.front() else {
            return true;
        };
        let slot = self.slab.get(head);
        match slot.steer {
            Steer::Shelf => {
                if self.slab.stage(head) != Stage::Completed || self.slab.is_squashed(head) {
                    // Completion and squash both arrive via `t`'s own
                    // events, and the event-drain wake unparks first.
                    return true;
                }
                if let Some(sq_idx) = slot.sq_idx {
                    if th.sq.get(sq_idx).is_some() {
                        // A completed shelf store still holding its SQ
                        // entry is poppable at the SQ front (the window
                        // head is the eldest, so its entry *is* the
                        // front); the check above already caught this.
                        return false;
                    }
                }
                false // committable: one budget slot away from progress
            }
            Steer::Iq => {
                if self.slab.stage(head) != Stage::Completed {
                    return true;
                }
                if th.shelf_retire_ptr < slot.shelf_squash_idx {
                    // Advances only at `t`'s own shelf writebacks.
                    return true;
                }
                if slot.inst.is_store() && th.store_buffer.len() >= self.cfg.store_buffer_entries {
                    return true; // the store buffer is frozen while parked
                }
                false
            }
        }
    }

    /// Attempts to grant thread `t` a park certificate (see [`crate::skip`]
    /// module docs). Every early return is a condition whose per-cycle
    /// replay the reduced tick could not keep exact, or a passive state
    /// flip with no event or horizon term to wake the thread.
    fn try_park(&mut self, t: usize) {
        let now = self.now;

        // SSR decay must be a provable no-op; quiescence also pins the
        // classification chain's SSR branch false and `shelf_allows` true
        // for the whole park.
        if !self.threads[t].ssr.is_quiescent() {
            return;
        }

        let mut horizon = u64::MAX;

        {
            let th = &self.threads[t];
            // ---- fetch: must stay ineligible ----
            let room = th.frontend.len() + self.cfg.fetch_width <= self.cfg.frontend_per_thread();
            if th.fetch_stalled_until > now {
                // The stall expires passively at a known cycle.
                horizon = horizon.min(th.fetch_stalled_until);
            } else if room && (th.waiting_branch.is_none() || self.cfg.wrong_path_fetch) {
                return; // eligible: the fetch selector could pick it
            }
            // (`!room` is frozen — fetch can't push and a parked dispatch
            // never pops; `waiting_branch` clears only at the branch's own
            // writeback event, which unparks the thread first.)

            // ---- store buffer: drain attempts must be provable no-ops ----
            if let Some(&(_, ready)) = th.store_buffer.front() {
                if ready <= now {
                    // A due drain retries the hierarchy every cycle and
                    // mutates MSHR/port state even when it fails.
                    return;
                }
                horizon = horizon.min(ready);
            }
        }

        // ---- issue: none of `t`'s IQ work may be selectable ----
        // (Future ready-wheel arrivals are fine: the ready-wheel drain at
        // the top of `tick` unparks the thread the cycle they come due.)
        for &(age, id) in &self.ready_pool {
            if self.slab.live_with_age(id, age) && self.slab.thread_of(id) == t {
                return;
            }
        }

        // ---- commit: the window head must be provably uncommittable ----
        if !self.commit_frozen(t) {
            return;
        }

        // ---- dispatch head: record the frozen resource verdict ----
        let th = &self.threads[t];
        let dispatch = if let Some(&head) = th.frontend.front() {
            let mature = self.slab.get(head).fetch_cycle + self.cfg.fetch_to_dispatch as u64;
            if mature > now {
                // Maturation is passive and exact: a horizon term.
                horizon = horizon.min(mature);
                ParkDispatch::NoHead
            } else {
                let slot = self.slab.get(head);
                let inst = slot.inst;
                if inst.op == OpClass::MemBarrier {
                    if th.window.is_empty() && th.store_buffer.is_empty() {
                        return; // would dispatch
                    }
                    // The window shrinks only at commit (frozen above) and
                    // the store buffer is frozen, so the barrier stays put.
                    ParkDispatch::Barrier
                } else {
                    // A first dispatch attempt would mutate predictor
                    // state; only already-memoized heads can park.
                    let Some((steer, _)) = slot.steer_memo else {
                        return;
                    };
                    match steer {
                        Steer::Iq => {
                            // First failing *thread-local* check in
                            // `try_dispatch` order. Shared inputs (IQ
                            // occupancy, free lists) fluctuate with live
                            // threads: the IQ is re-checked live by the
                            // mirror (the real walk checks it before any
                            // local), and a head held back *only* by a
                            // shared input cannot park at all.
                            if th.rob.is_full() {
                                ParkDispatch::IqBlocked(LocalStall::RobFull)
                            } else if inst.is_load() && th.lq.is_full() {
                                ParkDispatch::IqBlocked(LocalStall::LqFull)
                            } else if inst.is_store() && th.sq.is_full() {
                                ParkDispatch::IqBlocked(LocalStall::SqFull)
                            } else {
                                return;
                            }
                        }
                        Steer::Shelf => {
                            if th.shelf.len() >= th.shelf_capacity {
                                ParkDispatch::ShelfBlocked(LocalStall::ShelfFull)
                            } else if self.cfg.memory_model == MemoryModel::Tso
                                && inst.is_store()
                                && th.sq.is_full()
                            {
                                ParkDispatch::ShelfBlocked(LocalStall::SqFull)
                            } else if th.shelf_next_idx - th.shelf_retire_ptr
                                >= th.shelf_index_space(self.cfg.narrow_shelf_index)
                            {
                                ParkDispatch::ShelfBlocked(LocalStall::ShelfIndexFull)
                            } else {
                                return;
                            }
                        }
                    }
                }
            }
        } else {
            ParkDispatch::NoHead
        };

        // ---- shelf head: record the frozen classification outcome ----
        let issue = if let Some(&sid) = th.shelf.front() {
            // The parking tick's issue stage just ran its head-change
            // stanza on this (unchanged) head.
            debug_assert_eq!(th.head_blocked_id, Some(sid));
            let slot = self.slab.get(sid);
            // Cross-cluster limbo: a source whose scoreboard base cycle
            // has passed but whose shelf-side arrival is still forwarding-
            // penalty cycles out flips readiness passively, with no event
            // or horizon term. Refuse to park until it settles.
            if self.cfg.cluster_forward_penalty > 0 {
                for tag in slot.src_tags.iter().flatten() {
                    let base = self.scoreboard.ready_at(*tag);
                    if base != Scoreboard::PENDING
                        && self.tag_cluster[tag.index()] != Steer::Shelf
                        && base <= now
                        && now < base + self.cfg.cluster_forward_penalty as u64
                    {
                        return;
                    }
                }
            }
            if self.tracker_head_view(t) < slot.iq_barrier {
                // Order barrier: clears only when `t`'s own IQ work issues.
                ParkIssue {
                    bucket: Some(0),
                    streak: false,
                    cause: Some(StallCause::ShelfHeadBlocked),
                }
            } else if slot
                .src_tags
                .iter()
                .flatten()
                .any(|tag| !self.scoreboard.is_ready(*tag, now))
            {
                // RAW: resolves at the producer's writeback, which is this
                // thread's own event (renaming is per-thread).
                ParkIssue {
                    bucket: Some(2),
                    streak: true,
                    cause: Some(StallCause::ShelfHeadBlocked),
                }
            } else if slot
                .prev_mapping
                .is_some_and(|p| !self.scoreboard.is_ready(p.tag, now))
            {
                // WAW on the shared destination register.
                ParkIssue {
                    bucket: Some(3),
                    streak: false,
                    cause: Some(StallCause::ShelfHeadBlocked),
                }
            } else if slot.inst.is_load() && !self.store_set_clear(sid, slot) {
                // Store-set block: clears at an elder store's writeback.
                ParkIssue {
                    bucket: Some(4),
                    streak: false,
                    cause: Some(StallCause::ShelfHeadBlocked),
                }
            } else if slot.inst.is_store() && th.store_buffer.len() >= self.cfg.store_buffer_entries
            {
                // The structural bucket, stably true through its store-
                // buffer limb whatever the (shared) FUs do.
                ParkIssue {
                    bucket: Some(4),
                    streak: false,
                    cause: Some(StallCause::FuBusy),
                }
            } else {
                // Every remaining chain outcome (a pure FU-busy bump, or
                // no bump at all for a TSO-held or issue-ready head)
                // depends on shared FU state that fluctuates with live
                // threads: not certifiable.
                return;
            }
        } else {
            ParkIssue::default()
        };

        // A fill for a line this thread is waiting on can change fetch or
        // store-buffer behavior the cycle it lands; bound the park by it.
        if let Some(c) = self.hierarchy.next_fill_after_for(now.saturating_sub(1), t) {
            horizon = horizon.min(c);
        }
        if horizon <= now {
            // Would expire before the next tick: not worth a certificate.
            return;
        }
        self.skip.park(
            t,
            ParkCert {
                horizon,
                issue,
                dispatch,
            },
        );
    }

    /// Snapshot of every piece of engine state that can change from one
    /// idle cycle to the next (probe-pair equality certificate).
    fn stable_snapshot(&self) -> StableSnapshot {
        let mut threads = [ThreadLens::default(); MAX_SKIP_THREADS];
        for (lens, th) in threads.iter_mut().zip(self.threads.iter()) {
            *lens = ThreadLens {
                frontend: th.frontend.len(),
                window: th.window.len(),
                shelf: th.shelf.len(),
                rob: th.rob.len(),
                lq: th.lq.len(),
                sq: th.sq.len(),
                store_buffer: th.store_buffer.len(),
                inflight_loads: th.inflight_loads.len(),
                inflight_stores: th.inflight_stores.len(),
                pre_issue_count: th.pre_issue_count,
                fetch_stalled_until: th.fetch_stalled_until,
                waiting_branch: th.waiting_branch,
                next_fetch_seq: th.trace.next_fetch_seq(),
                head_blocked_id: th.head_blocked_id,
                tracker_head: th.issue_tracker.head(),
                shelf_retire_ptr: th.shelf_retire_ptr,
                shelf_next_idx: th.shelf_next_idx,
                ssr_iq: th.ssr.iq_value(),
                ssr_shelf: th.ssr.shelf_value(),
            };
        }
        StableSnapshot {
            threads,
            icount_last: self.icount.last_selected(),
            fetch_rr: self.fetch_rr,
            slab_live: self.slab.len(),
            iq_len: self.iq.len(),
            iq_waiting: self.iq_waiting,
            ready_pool_len: self.ready_pool.len(),
            events_len: self.events.len(),
            ready_wheel_len: self.ready_wheel.len(),
        }
    }

    /// The event horizon: the earliest future cycle at which any stage's
    /// inputs can change. Conservative — an undershoot merely re-probes.
    /// `u64::MAX` means nothing is pending at all (a true deadlock; the
    /// caller's budget bounds the jump and the driver's watchdog, keyed on
    /// retired instructions, still diagnoses it).
    fn skip_horizon(&self) -> (u64, SkipCause) {
        // Boundary discipline: `now` is the cycle the *next* tick will
        // execute, so every term due at or after `now` (`>= now`, not
        // `> now`) must be considered. A term due exactly at `now` yields a
        // zero-length span and the skip is abandoned — dropping it instead
        // would let a later term bound the jump right over the due cycle.
        let now = self.now;
        let mut best = (u64::MAX, SkipCause::LimitCap);
        if let Some(c) = self.events.next_due(now) {
            consider(&mut best, c, SkipCause::PipeEvent);
        }
        if let Some(c) = self.ready_wheel.next_due(now) {
            consider(&mut best, c, SkipCause::ReadyWheel);
        }
        // `next_fill_after` is strictly-after, and a fill landing exactly
        // at `now` frees its MSHR for the next tick's retries.
        if let Some(c) = self.hierarchy.next_fill_after(now.saturating_sub(1)) {
            consider(&mut best, c, SkipCause::MshrFill);
        }
        // Unpipelined FUs free passively at their busy-until cycle; a ready
        // instruction blocked only on one must not wait for a later event.
        for units in &self.fu_busy {
            for &b in units {
                if b >= now {
                    consider(&mut best, b, SkipCause::FuFree);
                }
            }
        }
        for th in &self.threads {
            if th.fetch_stalled_until >= now {
                consider(&mut best, th.fetch_stalled_until, SkipCause::FetchStall);
            }
            // The frontend head matures through the fetch-to-dispatch pipe
            // at a known cycle with no scheduled event.
            if let Some(&head) = th.frontend.front() {
                let ready = self.slab.get(head).fetch_cycle + self.cfg.fetch_to_dispatch as u64;
                if ready >= now {
                    consider(&mut best, ready, SkipCause::FrontendDecode);
                }
            }
            if let Some(&(_, ready)) = th.store_buffer.front() {
                if ready >= now {
                    consider(&mut best, ready, SkipCause::StoreBuffer);
                }
            }
        }
        best
    }

    /// Fast-forwards `k` provably idle cycles: counters replay scaled,
    /// decaying state replays exactly, the tracer receives the span's
    /// attribution and grid samples, and the cycle counter jumps.
    fn fast_forward(&mut self, k: u64, rec: &ProbeRecord, cause: SkipCause) {
        debug_assert!(k > 0);
        // Skip-path cycle arithmetic deals in multi-thousand-cycle jumps:
        // guard the addition like `counters::acc` does.
        debug_assert!(
            self.now.checked_add(k).is_some(),
            "cycle counter overflow: {} + {k}",
            self.now
        );
        let start = self.now;
        let end = start.saturating_add(k);

        // Scaled counter replay. `rec.delta.cycles == 1`, so the cycle
        // counter advances by `k` together with everything that must sum
        // to it (stall tallies, occupancy integrals).
        self.counters.add_scaled(&rec.delta, k);
        self.hierarchy.add_scaled_counters(&rec.mem_delta, k);

        // Exact replay of decaying state. SSRs are zero at any fixed point
        // (the snapshot pins their values and decaying values defeat the
        // probe pair), so `tick_many` is belt-and-braces.
        for th in &mut self.threads {
            th.ssr.tick_many(k);
        }
        // Practical-steer tables decay per cycle and feed the next
        // dispatch's steering decision; replay them exactly. Scoreboard
        // readiness cannot flip inside the span: every `set_ready_at`
        // pairs with a pipeline event at the same cycle and the horizon
        // stops at the earliest event, so each replayed tick sees exactly
        // what the real tick would have seen.
        if self.cfg.steer == SteerPolicy::Practical {
            for ti in 0..self.threads.len() {
                let (th, sb) = (&mut self.threads[ti], &self.scoreboard);
                let hold = th.pre_issue_count > th.frontend.len();
                let rat = &th.rat;
                for i in 0..k {
                    let c = start + i;
                    th.practical.tick(|reg| sb.is_ready(rat.get(reg).tag, c));
                    if hold {
                        th.practical.hold_issue_floor();
                    }
                }
            }
        }

        // Blocked shelf heads saw their streak bumped each probed cycle;
        // the whole span repeats that.
        let bump = u32::try_from(k).unwrap_or(u32::MAX);
        for (ti, th) in self.threads.iter_mut().enumerate() {
            if rec.streak_bumped & (1 << ti) != 0 {
                th.head_blocked_streak = th.head_blocked_streak.saturating_add(bump);
            }
        }

        // Tracer: every skipped cycle repeats the probe's stall
        // attribution, and sampling-grid cycles inside the span record the
        // (constant) pre-skip occupancy, exactly as tick-by-tick would.
        if self.tracer.is_some() {
            let mut occ = [0u64; 6];
            let mut frontend = 0usize;
            for th in &self.threads {
                occ[0] += th.rob.len() as u64;
                occ[2] += th.lq.len() as u64;
                occ[3] += th.sq.len() as u64;
                occ[4] += th.shelf.len() as u64;
                frontend += th.frontend.len();
            }
            occ[1] = self.iq.len() as u64;
            occ[5] = (self.phys_fl.capacity() - self.phys_fl.available()) as u64;
            let tracer = self.tracer.as_deref_mut().expect("tracer checked above");
            tracer.attribute_span(k);
            let every = tracer.sample_period();
            let mut c = start.next_multiple_of(every);
            while c < end {
                tracer.sample(OccupancySample {
                    cycle: c,
                    rob: occ[0] as u32,
                    iq: occ[1] as u32,
                    lq: occ[2] as u32,
                    sq: occ[3] as u32,
                    shelf: occ[4] as u32,
                    prf: occ[5] as u32,
                    frontend: frontend as u32,
                });
                let Some(next) = c.checked_add(every) else {
                    break;
                };
                c = next;
            }
        }

        self.now = end;
        self.skip.stats.skipped_cycles += k;
        self.skip.stats.spans += 1;
        self.skip.stats.by_cause[cause as usize] += k;
    }

    // ---------------------------------------------------------------- fetch

    fn fetch_stage(&mut self) {
        let n = self.threads.len();
        let mut counts = std::mem::take(&mut self.scratch_counts);
        let mut eligible = std::mem::take(&mut self.scratch_eligible);
        counts.clear();
        eligible.clear();
        for t in &self.threads {
            counts.push(t.pre_issue_count);
            let room = t.frontend.len() + self.cfg.fetch_width <= self.cfg.frontend_per_thread();
            let stalled = t.fetch_stalled_until > self.now;
            let wrong_path_ok = t.waiting_branch.is_none() || self.cfg.wrong_path_fetch;
            eligible.push(room && !stalled && wrong_path_ok);
        }
        let selected = match self.cfg.fetch_policy {
            FetchPolicy::Icount => self.icount.select(&counts, &eligible),
            FetchPolicy::RoundRobin => {
                let pick = (1..=n)
                    .map(|off| (self.fetch_rr + off) % n)
                    .find(|&t| eligible[t]);
                if let Some(t) = pick {
                    self.fetch_rr = t;
                }
                pick
            }
        };
        self.scratch_counts = counts;
        self.scratch_eligible = eligible;
        let Some(t) = selected else {
            return;
        };
        if self.threads[t].waiting_branch.is_some() {
            self.fetch_wrong_path(t);
        } else {
            self.fetch_trace(t);
        }
    }

    fn fetch_trace(&mut self, t: usize) {
        let block_mask = !(self.cfg.hierarchy.l1i.block_bytes as u64 - 1);
        let l1_lat = self.cfg.hierarchy.l1i.latency as u64;
        let mut fetched = 0;
        // The I-cache block the group is currently streaming from. A fetch
        // group probes the I-cache once per block it touches: a group that
        // crosses a block boundary (or is redirected across one) must be
        // able to miss — and allocate an MSHR — on the second block too.
        let mut cur_block: Option<u64> = None;
        while fetched < self.cfg.fetch_width {
            let (seq, inst) = self.threads[t].trace.fetch();
            if cur_block != Some(inst.pc & block_mask) {
                match self.hierarchy.access_inst_for(inst.pc, self.now, t) {
                    Ok(acc) => {
                        if acc.complete_cycle > self.now + l1_lat {
                            // I-miss: stall fetch until the fill and replay
                            // this instruction then. Earlier instructions of
                            // the group (from already-resident blocks) keep
                            // their fetch.
                            self.threads[t].fetch_stalled_until = acc.complete_cycle;
                            self.threads[t].trace.rewind_to(seq);
                            return;
                        }
                    }
                    Err(_) => {
                        // No MSHR: retry next cycle.
                        self.threads[t].trace.rewind_to(seq);
                        return;
                    }
                }
                cur_block = Some(inst.pc & block_mask);
            }
            let mut slot = Slot::new(t, seq, inst, self.now);
            let mut stop_group = false;
            if inst.is_branch() {
                let br = inst.branch.expect("branches carry branch info");
                let pred = self.threads[t].bpred.predict(inst.pc, br.is_return);
                self.counters.bpred_lookups += 1;
                // The effective prediction: a taken direction without a
                // known target cannot redirect fetch, so it acts not-taken.
                let effective = shelfsim_uarch::Prediction {
                    taken: pred.taken && pred.target.is_some(),
                    ..pred
                };
                slot.prediction = Some(effective);
                // Mispredict: wrong direction, or taken with wrong/unknown
                // target.
                let dir_wrong = effective.taken != br.taken;
                let tgt_wrong = br.taken && effective.target != Some(br.next_pc);
                slot.mispredicted = dir_wrong || tgt_wrong;
                stop_group = effective.taken || slot.mispredicted;
            }
            let mispred = slot.mispredicted;
            let id = self.slab.insert(slot);
            self.skip.note_progress(t);
            self.threads[t].frontend.push_back(id);
            self.threads[t].pre_issue_count += 1;
            acc(&mut self.counters.fetched, 1);
            fetched += 1;
            if mispred {
                self.threads[t].waiting_branch = Some(id);
            }
            if stop_group {
                break;
            }
        }
    }

    fn fetch_wrong_path(&mut self, t: usize) {
        for _ in 0..self.cfg.fetch_width {
            let inst = self.synth_wrong_path_inst(t);
            let mut slot = Slot::new(t, u64::MAX, inst, self.now);
            slot.wrong_path = true;
            let id = self.slab.insert(slot);
            self.skip.note_progress(t);
            self.threads[t].frontend.push_back(id);
            self.threads[t].pre_issue_count += 1;
            acc(&mut self.counters.fetched, 1);
            self.counters.wrong_path_fetched += 1;
        }
    }

    fn synth_wrong_path_inst(&mut self, t: usize) -> DynInst {
        let rng = &mut self.threads[t].wrong_path_rng;
        let roll: f64 = rng.gen();
        let pc = 0x70_0000 + ((t as u64) << 36);
        if roll < 0.25 {
            let addr = 0x1000_0000 + ((t as u64) << 36) + (rng.gen_range(0u64..(1 << 20)) & !7);
            DynInst::load(
                ArchReg::int(rng.gen_range(8..24)),
                ArchReg::int(rng.gen_range(0..8)),
                MemInfo::new(addr, 8),
            )
            .at(pc)
        } else {
            let dest = ArchReg::int(rng.gen_range(8..24));
            let s1 = ArchReg::int(rng.gen_range(0..24));
            let s2 = ArchReg::int(rng.gen_range(0..24));
            DynInst::alu(OpClass::IntAlu, dest, &[s1, s2]).at(pc)
        }
    }

    // ------------------------------------------------------------- dispatch

    fn dispatch_stage(&mut self) {
        let n = self.threads.len();
        let mut budget = self.cfg.dispatch_width;
        // Per-thread blocked flags as a bitmask (`validate` caps threads at
        // 8, so `u64` is never too narrow), plus the structural cause each
        // blocked thread hit (read only when tracing is on).
        let mut blocked = 0u64;
        let mut progress_mask = 0u64;
        let mut stall_cause = [StallCause::Empty; 8];
        'outer: while budget > 0 {
            // Round-robin over threads with a dispatchable head.
            let mut progressed = false;
            for (t, cause_slot) in stall_cause.iter_mut().enumerate().take(n) {
                if budget == 0 {
                    break 'outer;
                }
                if blocked & (1 << t) != 0 {
                    continue;
                }
                let Some(&head) = self.threads[t].frontend.front() else {
                    continue;
                };
                let ready_cycle =
                    self.slab.get(head).fetch_cycle + self.cfg.fetch_to_dispatch as u64;
                if ready_cycle > self.now {
                    continue;
                }
                // Parked threads replay their certificate's (frozen)
                // resource verdict instead of re-walking `try_dispatch`.
                let outcome = if self.skip.is_parked(t) {
                    self.park_dispatch_mirror(t)
                } else {
                    self.try_dispatch(t, head)
                };
                match outcome {
                    DispatchOutcome::Dispatched => {
                        self.threads[t].frontend.pop_front();
                        self.skip.note_progress(t);
                        budget -= 1;
                        progressed = true;
                        progress_mask |= 1 << t;
                    }
                    DispatchOutcome::Stalled(cause) => {
                        *cause_slot = cause;
                        blocked |= 1 << t;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        if let Some(tracer) = self.tracer.as_deref_mut() {
            for (t, &cause_hit) in stall_cause.iter().enumerate().take(n) {
                let cause = if progress_mask & (1 << t) != 0 {
                    StallCause::Progress
                } else if blocked & (1 << t) != 0 {
                    cause_hit
                } else if let Some(&head) = self.threads[t].frontend.front() {
                    if self.slab.get(head).fetch_cycle + self.cfg.fetch_to_dispatch as u64
                        > self.now
                    {
                        StallCause::NotReady
                    } else {
                        // A dispatchable, unblocked head left unserved means
                        // the dispatch width went to other threads.
                        StallCause::WidthLimited
                    }
                } else {
                    StallCause::Empty
                };
                tracer.attribute_dispatch(t, cause);
            }
        }
    }

    fn try_dispatch(&mut self, t: usize, id: InstId) -> DispatchOutcome {
        let inst = self.slab.get(id).inst;
        let wrong_path = self.slab.get(id).wrong_path;

        // Memory barriers serialize at dispatch (§III-D).
        if inst.op == OpClass::MemBarrier
            && !(self.threads[t].window.is_empty() && self.threads[t].store_buffer.is_empty())
        {
            self.counters.stalls.barrier += 1;
            return DispatchOutcome::Stalled(StallCause::Barrier);
        }

        // ---- steering decision (decode-stage information only) ----
        // Memoized at the first dispatch attempt: the prediction tables
        // (RCT, PLT, shadow oracle) are consulted and updated exactly once
        // per instruction. A head blocked on resources retries dispatch
        // every cycle; re-deciding on each retry would re-mutate predictor
        // state — in particular, `PracticalSteer::decide` samples a fresh
        // PLT column per call, so retries leaked columns until the head
        // finally dispatched.
        let (steer, plt_col) = match self.slab.get(id).steer_memo {
            Some(d) => d,
            None => {
                let d = self.decide_steer(t, &inst, wrong_path);
                self.slab.get_mut(id).steer_memo = Some(d);
                d
            }
        };

        // ---- resource checks (no mutation before all pass) ----
        let th = &self.threads[t];
        match steer {
            Steer::Iq => {
                if self.iq.len() >= self.cfg.iq_entries {
                    self.counters.stalls.iq_full += 1;
                    return DispatchOutcome::Stalled(StallCause::IqFull);
                }
                if th.rob.is_full() {
                    self.counters.stalls.rob_full += 1;
                    return DispatchOutcome::Stalled(StallCause::RobFull);
                }
                if inst.is_load() && th.lq.is_full() {
                    self.counters.stalls.lq_full += 1;
                    return DispatchOutcome::Stalled(StallCause::LsqFull);
                }
                if inst.is_store() && th.sq.is_full() {
                    self.counters.stalls.sq_full += 1;
                    return DispatchOutcome::Stalled(StallCause::LsqFull);
                }
                if inst.dest.is_some() && self.phys_fl.is_empty() {
                    self.counters.stalls.no_phys_reg += 1;
                    return DispatchOutcome::Stalled(StallCause::NoRename);
                }
            }
            Steer::Shelf => {
                if th.shelf.len() >= th.shelf_capacity {
                    self.counters.stalls.shelf_full += 1;
                    return DispatchOutcome::Stalled(StallCause::ShelfFull);
                }
                // TSO: the store buffer may not coalesce, so shelf stores
                // need real SQ entries (§III-D).
                if self.cfg.memory_model == MemoryModel::Tso && inst.is_store() && th.sq.is_full() {
                    self.counters.stalls.sq_full += 1;
                    return DispatchOutcome::Stalled(StallCause::LsqFull);
                }
                if th.shelf_next_idx - th.shelf_retire_ptr
                    >= th.shelf_index_space(self.cfg.narrow_shelf_index)
                {
                    self.counters.stalls.shelf_index_full += 1;
                    return DispatchOutcome::Stalled(StallCause::ShelfFull);
                }
                if inst.dest.is_some() && self.ext_fl.is_empty() {
                    self.counters.stalls.no_ext_tag += 1;
                    return DispatchOutcome::Stalled(StallCause::NoRename);
                }
            }
        }

        // ---- rename ----
        let age = self.next_age;
        self.next_age += 1;
        let th = &mut self.threads[t];
        let mut src_tags = [None, None];
        for (i, src) in inst.srcs.iter().enumerate() {
            if let Some(r) = src {
                src_tags[i] = Some(th.rat.get(*r).tag);
                self.counters.rat_reads += 1;
                self.counters.prf_reads += 1;
            }
        }
        let (dest_pri, dest_tag, prev_mapping) = match (steer, inst.dest) {
            (_, None) => (None, None, None),
            (Steer::Iq, Some(d)) => {
                let p = PhysReg(self.phys_fl.allocate().expect("checked above"));
                self.counters.freelist_ops += 1;
                let prev = th.rat.set(
                    d,
                    Mapping {
                        pri: p,
                        tag: p.as_tag(),
                    },
                );
                self.counters.rat_reads += 1;
                self.counters.rat_writes += 1;
                self.scoreboard.mark_pending(p.as_tag());
                (Some(p), Some(p.as_tag()), Some(prev))
            }
            (Steer::Shelf, Some(d)) => {
                let tag = Tag(self.ext_fl.allocate().expect("checked above"));
                self.counters.ext_freelist_ops += 1;
                let prev = th.rat.get(d);
                th.rat.set(d, Mapping { pri: prev.pri, tag });
                self.counters.rat_reads += 1;
                self.counters.rat_writes += 1;
                self.scoreboard.mark_pending(tag);
                (Some(prev.pri), Some(tag), Some(prev))
            }
        };

        // ---- structure allocation ----
        self.slab.set_age(id, age);
        self.slab.set_stage(id, Stage::Dispatched);
        let slot = self.slab.get_mut(id);
        slot.steer = steer;
        slot.dispatch_cycle = self.now;
        slot.src_tags = src_tags;
        slot.dest_pri = dest_pri;
        slot.dest_tag = dest_tag;
        slot.prev_mapping = prev_mapping;
        slot.plt_column = plt_col;

        let th = &mut self.threads[t];
        match steer {
            Steer::Iq => {
                let rob_idx = th.rob.push(id).expect("checked above");
                th.issue_tracker.dispatch(rob_idx);
                self.counters.rob_writes += 1;
                let slot = self.slab.get_mut(id);
                slot.rob_idx = Some(rob_idx);
                slot.shelf_squash_idx = th.shelf_next_idx;
                if inst.is_load() {
                    let lq_idx = th.lq.push(id).expect("checked above");
                    self.slab.get_mut(id).lq_idx = Some(lq_idx);
                    self.counters.lq_writes += 1;
                }
                if inst.is_store() {
                    let sq_idx = th.sq.push(id).expect("checked above");
                    self.slab.get_mut(id).sq_idx = Some(sq_idx);
                    self.counters.sq_writes += 1;
                }
                self.slab.get_mut(id).iq_pos = self.iq.len() as u32;
                self.iq.push(id);
                self.counters.iq_writes += 1;
                // Wakeup-CAM registration: remember which source tags are
                // still outstanding so each broadcast touches only entries
                // actually waiting on a source, and pre-fold the ready
                // cycles of sources that already broadcast.
                let mut pending = 0u8;
                let mut ready_cycle = 0u64;
                for tag in src_tags.iter().flatten() {
                    let at = self.scoreboard.ready_at(*tag);
                    if at == Scoreboard::PENDING {
                        self.tag_consumers[tag.index()].push((id, age));
                        pending += 1;
                    } else {
                        ready_cycle = ready_cycle.max(at + self.iq_forward_penalty(*tag));
                    }
                }
                let slot = self.slab.get_mut(id);
                slot.data_ready_cycle = ready_cycle;
                if pending > 0 {
                    slot.pending_srcs = pending;
                    self.iq_waiting += 1;
                } else {
                    // All sources already broadcast: the ready cycle is
                    // final, so schedule the entry for the select scan now
                    // (`push` clamps past cycles to `now + 1`; issue runs
                    // before dispatch, so this cycle's scan is over).
                    self.ready_wheel.push(
                        self.now,
                        Event {
                            cycle: ready_cycle,
                            age,
                            id,
                        },
                    );
                }
            }
            Steer::Shelf => {
                let shelf_idx = th.shelf_next_idx;
                th.shelf_next_idx += 1;
                th.shelf_retired.push_back(false);
                th.shelf.push_back(id);
                self.counters.shelf_writes += 1;
                let first_of_run = th.last_steer != Some(Steer::Shelf);
                let slot = self.slab.get_mut(id);
                slot.shelf_idx = Some(shelf_idx);
                slot.iq_barrier = th.issue_tracker.next_index();
                slot.first_of_run = first_of_run;
                slot.lq_tail_at_dispatch = th.lq.next_index();
                slot.sq_tail_at_dispatch = th.sq.next_index();
                if self.cfg.memory_model == MemoryModel::Tso && inst.is_store() {
                    let sq_idx = th.sq.push(id).expect("checked above");
                    self.slab.get_mut(id).sq_idx = Some(sq_idx);
                    self.counters.sq_writes += 1;
                }
            }
        }
        let th = &mut self.threads[t];
        th.last_steer = Some(steer);
        th.window.push_back(id);

        if inst.is_store() {
            th.store_sets.store_dispatched(inst.pc, age);
            th.inflight_stores.push_back((age, id));
        }

        // Classification shadow (all dispatched instructions participate so
        // tracker indices stay consecutive; wrong-path entries are squashed
        // before any younger real instruction dispatches).
        let cidx = th.classifier.dispatch();
        self.slab.get_mut(id).classify_idx = cidx;

        acc(&mut self.counters.dispatched, 1);
        if steer == Steer::Shelf {
            self.counters.dispatched_shelf += 1;
        }
        DispatchOutcome::Dispatched
    }

    fn decide_steer(&mut self, t: usize, inst: &DynInst, _wrong_path: bool) -> (Steer, Option<u8>) {
        if self.cfg.shelf_entries == 0 {
            return (Steer::Iq, None);
        }
        match self.cfg.steer {
            SteerPolicy::AlwaysIq => (Steer::Iq, None),
            SteerPolicy::AlwaysShelf => (Steer::Shelf, None),
            SteerPolicy::Practical => {
                let load_lat = self.peek_load_latency(inst);
                let throttled = self.threads[t].head_blocked_streak > HEAD_THROTTLE_CYCLES;
                let (scoreboard, now) = (&self.scoreboard, self.now);
                let th = &mut self.threads[t];
                let rat = &th.rat;
                let (mut steer, col) = th.practical.decide(
                    inst,
                    |reg| !scoreboard.is_ready(rat.get(reg).tag, now),
                    &mut self.counters,
                );
                // Adaptive throttle: a shelf head stuck on data for a long
                // stretch means the predicted schedule has collapsed for
                // this thread; stop feeding the shelf until it drains (the
                // paper's sanctioned escape hatch for pathological phases).
                if throttled {
                    steer = Steer::Iq;
                }
                let shadow = th.shadow_oracle.decide(self.now, inst, load_lat);
                th.steer_decisions += 1;
                if shadow != steer {
                    th.missteers += 1;
                }
                (steer, col)
            }
            SteerPolicy::Oracle => {
                let load_lat = self.peek_load_latency(inst);
                let throttled = self.threads[t].head_blocked_streak > HEAD_THROTTLE_CYCLES;
                let th = &mut self.threads[t];
                let mut steer = th.oracle.decide(self.now, inst, load_lat);
                if throttled {
                    steer = Steer::Iq;
                }
                th.steer_decisions += 1;
                (steer, None)
            }
        }
    }

    fn peek_load_latency(&self, inst: &DynInst) -> u32 {
        if let (true, Some(mem)) = (inst.is_load(), inst.mem) {
            self.hierarchy
                .latency_of(self.hierarchy.peek_data(mem.addr))
        } else {
            2
        }
    }

    // ---------------------------------------------------------------- issue

    fn issue_stage(&mut self) {
        // SSR run-copy pre-pass: when the first shelf instruction of a run
        // becomes order-eligible at the shelf head, snapshot IQ SSR -> shelf
        // SSR (§III-B). Uses the same head view as eligibility below.
        self.refresh_ssr_copies();

        // Diagnostic: classify why each blocked shelf head is waiting; also
        // maintain the head-blocked streak that drives the adaptive shelf
        // throttle (the paper's "disable by steering to the IQ" escape).
        // The classification doubles as the tracer's issue-side stall
        // attribution for threads whose shelf head is the oldest blocker.
        let mut head_cause: [Option<StallCause>; 8] = [None; 8];
        for (t, cause_slot) in head_cause.iter_mut().enumerate().take(self.threads.len()) {
            if self.threads[t].shelf.front().copied() != self.threads[t].head_blocked_id {
                self.threads[t].head_blocked_id = self.threads[t].shelf.front().copied();
                self.threads[t].head_blocked_streak = 0;
            }
            if self.skip.is_parked(t) {
                // Certificate replay: a parked thread's shelf head (and so
                // its whole classification chain) is frozen, so the bump
                // pattern recorded at park time repeats verbatim.
                let issue = self.skip.certs[t].issue;
                if let Some(b) = issue.bucket {
                    self.counters.shelf_head_stalls[b as usize] += 1;
                }
                if issue.streak {
                    self.threads[t].head_blocked_streak += 1;
                    self.skip.streak_bumped |= 1 << t;
                }
                *cause_slot = issue.cause;
                continue;
            }
            if let Some(&id) = self.threads[t].shelf.front() {
                let slot = self.slab.get(id);
                if self.tracker_head_view(t) < slot.iq_barrier {
                    self.counters.shelf_head_stalls[0] += 1;
                    *cause_slot = Some(StallCause::ShelfHeadBlocked);
                } else if !self.threads[t]
                    .ssr
                    .shelf_allows(min_writeback_latency(slot.inst.op))
                {
                    self.counters.shelf_head_stalls[1] += 1;
                    *cause_slot = Some(StallCause::ShelfHeadBlocked);
                } else if slot
                    .src_tags
                    .iter()
                    .flatten()
                    .any(|tag| !self.scoreboard.is_ready(*tag, self.now))
                {
                    self.counters.shelf_head_stalls[2] += 1;
                    self.threads[t].head_blocked_streak += 1;
                    self.skip.streak_bumped |= 1 << t;
                    *cause_slot = Some(StallCause::ShelfHeadBlocked);
                } else if slot
                    .prev_mapping
                    .is_some_and(|p| !self.scoreboard.is_ready(p.tag, self.now))
                {
                    // WAW on the shared destination register.
                    self.counters.shelf_head_stalls[3] += 1;
                    *cause_slot = Some(StallCause::ShelfHeadBlocked);
                } else if slot.inst.is_load() && !self.store_set_clear(id, slot) {
                    self.counters.shelf_head_stalls[4] += 1;
                    *cause_slot = Some(StallCause::ShelfHeadBlocked);
                } else if !self.fu_available(slot.inst.op.fu_kind())
                    || (slot.inst.is_store()
                        && self.threads[t].store_buffer.len() >= self.cfg.store_buffer_entries)
                {
                    // Structural (shares the WAW bucket's neighbour slot).
                    self.counters.shelf_head_stalls[4] += 1;
                    *cause_slot = Some(StallCause::FuBusy);
                }
            }
        }

        let mut budget = self.cfg.issue_width;
        // Which threads issued / lost MSHR arbitration this cycle, for the
        // tracer's issue-side attribution (maintaining the masks is two
        // register ops; they are read only when tracing is on).
        let mut issued_mask = 0u64;
        let mut mshr_mask = 0u64;
        // Source readiness cannot change mid-cycle (broadcasts announce
        // future ready cycles), so data-ready IQ candidates arrive through
        // the ready wheel at their (final) ready cycle — drained at the top
        // of `tick`, where arrivals double as park wake-ups — and stay in
        // the pool until they issue or vanish; only the per-pick structural
        // checks (FU, store sets) re-run inside the selection loop. The
        // pool is compacted and re-sorted each cycle — it holds only ready-
        // but-unissued entries, a small set the full IQ scan used to
        // rediscover from scratch.
        let mut ready = std::mem::take(&mut self.ready_pool);
        ready.retain(|&(age, id)| {
            self.slab.live_with_age(id, age) && self.slab.stage(id) == Stage::Dispatched
        });
        ready.sort_unstable();
        // Loads that lost MSHR arbitration this cycle; they stay ineligible
        // until next cycle but must not block independent instructions.
        let mut mshr_losers = std::mem::take(&mut self.scratch_mshr_losers);
        mshr_losers.clear();
        // Per-thread shelf-head candidates, evaluated once and then
        // re-evaluated only for the thread that issued: every input of
        // `shelf_head_ready` except FU availability (checked per pick) is
        // per-cycle-stable or owned by the issuing thread (tracker head,
        // SSR copy, shelf front, in-flight loads).
        let mut shelf_cand: [Option<(u64, InstId)>; 8] = [None; 8];
        let nthreads = self.threads.len();
        for (t, cand) in shelf_cand.iter_mut().enumerate().take(nthreads) {
            // Parked threads are certified not issue-eligible.
            *cand = if self.skip.is_parked(t) {
                None
            } else {
                self.shelf_candidate(t)
            };
        }
        // Cursor into the age-sorted pool: every condition that skips an
        // entry is sticky for the rest of the cycle (issued entries leave
        // `Stage::Dispatched`, FU counts only fall until the next
        // `process_events`, store-set membership changes only at writeback,
        // MSHR losers stay sidelined), so entries the scan rejects once
        // never need re-examining and each pick resumes where the last one
        // stopped instead of rescanning from the front.
        let mut iq_cursor = 0usize;
        while budget > 0 {
            // Oldest-first selection across the IQ and all shelf heads.
            let mut best: Option<(u64, InstId, Steer)> = None;
            while let Some(&(age, id)) = ready.get(iq_cursor) {
                // Already issued this cycle, or sidelined.
                if self.slab.stage(id) != Stage::Dispatched || mshr_losers.contains(&id) {
                    iq_cursor += 1;
                    continue;
                }
                let slot = self.slab.get(id);
                if !self.fu_available(slot.inst.op.fu_kind()) {
                    iq_cursor += 1;
                    continue;
                }
                if slot.inst.is_load() && !self.store_set_clear(id, slot) {
                    iq_cursor += 1;
                    continue;
                }
                // The pool is age-sorted: the first survivor is the oldest.
                // Leave the cursor on it — if a shelf head outranks it this
                // pick, it is still the IQ-side candidate for the next one.
                best = Some((age, id, Steer::Iq));
                break;
            }
            for cand in shelf_cand.iter().take(nthreads) {
                let Some((age, id)) = *cand else { continue };
                if mshr_losers.contains(&id) {
                    continue;
                }
                if !self.fu_available(self.slab.get(id).inst.op.fu_kind()) {
                    continue;
                }
                if best.is_none_or(|(a, _, _)| age < a) {
                    best = Some((age, id, Steer::Shelf));
                }
            }
            let Some((_, id, steer)) = best else { break };
            let issued_thread = self.slab.get(id).thread;
            if self.do_issue(id, steer) {
                self.skip.note_progress(issued_thread);
                budget -= 1;
                issued_mask |= 1 << issued_thread;
                // Issuing advances only the issuing thread's state (tracker
                // head or shelf front): under optimistic same-cycle
                // semantics that thread's shelf run can become
                // order-eligible mid-cycle, and its SSR copy happens
                // combinationally at that moment (§III-B), not next cycle.
                if self.cfg.same_cycle_shelf_issue {
                    self.refresh_ssr_copy(issued_thread);
                }
                shelf_cand[issued_thread] = self.shelf_candidate(issued_thread);
            } else {
                // The candidate lost MSHR arbitration: sideline it for the
                // rest of the cycle and keep selecting. Load ordering is
                // enforced by store sets and the violation scan, not by
                // stalling the whole issue stage.
                mshr_losers.push(id);
                mshr_mask |= 1 << issued_thread;
            }
        }
        if self.tracer.is_some() {
            // Issue-side stall attribution: one cause per thread per cycle,
            // by fixed priority. Runs only with tracing on; the pool scans
            // below are off the untraced hot path.
            let mut attr = [StallCause::Empty; 8];
            for (t, a) in attr.iter_mut().enumerate().take(nthreads) {
                *a = if issued_mask & (1 << t) != 0 {
                    StallCause::Progress
                } else if mshr_mask & (1 << t) != 0 {
                    StallCause::NoMshr
                } else if let Some(c) = head_cause[t] {
                    c
                } else if shelf_cand[t].is_some()
                    || ready.iter().any(|&(_, id)| {
                        self.slab.get(id).thread == t && self.slab.stage(id) == Stage::Dispatched
                    })
                {
                    // Data-ready work existed but lost arbitration: to the
                    // issue width if it ran out, else to FU availability.
                    if budget == 0 {
                        StallCause::WidthLimited
                    } else {
                        StallCause::FuBusy
                    }
                } else if self.threads[t].pre_issue_count > self.threads[t].frontend.len() {
                    // Dispatched-but-unissued instructions exist, none
                    // data-ready.
                    StallCause::DataWait
                } else {
                    StallCause::Empty
                };
            }
            let tracer = self.tracer.as_deref_mut().expect("tracer checked above");
            for (t, &cause) in attr.iter().enumerate().take(nthreads) {
                tracer.attribute_issue(t, cause);
            }
        }
        self.ready_pool = ready;
        self.scratch_mshr_losers = mshr_losers;
    }

    /// Thread `t`'s shelf head as an issue candidate, if it passes every
    /// check except global FU availability (deferred to pick time).
    fn shelf_candidate(&self, t: usize) -> Option<(u64, InstId)> {
        let &id = self.threads[t].shelf.front()?;
        let slot = self.slab.get(id);
        self.shelf_head_ready(t, id, slot)
            .then_some((self.slab.age(id), id))
    }

    /// Snapshots IQ SSR -> shelf SSR for every shelf head whose run just
    /// became order-eligible (paper §III-B run-copy).
    fn refresh_ssr_copies(&mut self) {
        for t in 0..self.threads.len() {
            // A parked thread's run-copy condition is frozen false: the
            // head, its `ssr_copied` flag, and the tracker view cannot
            // change while the certificate holds.
            if !self.skip.is_parked(t) {
                self.refresh_ssr_copy(t);
            }
        }
    }

    /// Per-thread run-copy check (issues only perturb the issuing thread's
    /// shelf head, so mid-cycle refreshes need not walk every thread).
    fn refresh_ssr_copy(&mut self, t: usize) {
        let head_view = self.tracker_head_view(t);
        let th = &mut self.threads[t];
        if let Some(&head_id) = th.shelf.front() {
            let slot = self.slab.get_mut(head_id);
            if slot.first_of_run && !slot.ssr_copied && head_view >= slot.iq_barrier {
                slot.ssr_copied = true;
                th.ssr.copy_to_shelf();
            }
        }
    }

    /// The issue-tracking head visible to shelf eligibility this cycle:
    /// live (optimistic, same-cycle bypass) or the start-of-cycle snapshot
    /// (conservative; §III-A critical-path discussion).
    fn tracker_head_view(&self, t: usize) -> u64 {
        if self.cfg.same_cycle_shelf_issue {
            self.threads[t].issue_tracker.head()
        } else {
            self.threads[t].tracker_head_snapshot
        }
    }

    /// Source readiness including the optional cross-cluster forwarding
    /// penalty (§VI): a value produced in the other queue's cluster arrives
    /// `cluster_forward_penalty` cycles later.
    fn src_ready(&self, tag: Tag, consumer: Steer, now: u64) -> bool {
        let base = self.scoreboard.ready_at(tag);
        if base == Scoreboard::PENDING {
            return false;
        }
        let penalty =
            if self.cfg.cluster_forward_penalty > 0 && self.tag_cluster[tag.index()] != consumer {
                self.cfg.cluster_forward_penalty as u64
            } else {
                0
            };
        base + penalty <= now
    }

    /// The cross-cluster forwarding penalty an IQ consumer pays for `tag`
    /// as of now (the producing cluster is latched at broadcast).
    fn iq_forward_penalty(&self, tag: Tag) -> u64 {
        if self.cfg.cluster_forward_penalty > 0 && self.tag_cluster[tag.index()] != Steer::Iq {
            self.cfg.cluster_forward_penalty as u64
        } else {
            0
        }
    }

    /// O(1) issue-queue removal via the cached backing-vector position:
    /// swap-remove the entry and re-point the element that moved into the
    /// vacated slot. Entries are position-tracked from dispatch, so neither
    /// issue nor squash needs a linear scan of the IQ.
    fn iq_remove(&mut self, id: InstId) {
        let pos = self.slab.get(id).iq_pos as usize;
        debug_assert_eq!(self.iq[pos], id);
        self.iq.swap_remove(pos);
        if let Some(&moved) = self.iq.get(pos) {
            self.slab.get_mut(moved).iq_pos = pos as u32;
        }
    }

    /// Reference recomputation of IQ source readiness (sanitizer
    /// cross-check for the incrementally maintained `data_ready_cycle`).
    #[cfg(feature = "sanitize")]
    fn iq_srcs_ready(&self, slot: &Slot) -> bool {
        slot.src_tags
            .iter()
            .flatten()
            .all(|tag| self.src_ready(*tag, Steer::Iq, self.now))
    }

    fn shelf_head_ready(&self, t: usize, id: InstId, slot: &Slot) -> bool {
        let th = &self.threads[t];
        // (1) In-order issue across queues: all elder IQ instructions of the
        // run must have issued (§III-A).
        if self.tracker_head_view(t) < slot.iq_barrier {
            return false;
        }
        // (2) Speculation: writeback must land past the shelf SSR (§III-B).
        if !th.ssr.shelf_allows(min_writeback_latency(slot.inst.op)) {
            return false;
        }
        // TSO (§III-D): loads are speculative until all elder loads have
        // completed, and so is every shelf instruction behind them — hold
        // the head while any elder load is in flight.
        if self.cfg.memory_model == MemoryModel::Tso {
            if let Some(&oldest) = th.inflight_loads.first() {
                if oldest < self.slab.age(id) {
                    return false;
                }
            }
        }
        // (3) Data hazards via the scoreboard: RAW on sources, WAW on the
        // previous writer of the shared destination register (§III-C).
        for tag in slot.src_tags.iter().flatten() {
            if !self.src_ready(*tag, Steer::Shelf, self.now) {
                return false;
            }
        }
        if let Some(prev) = slot.prev_mapping {
            if !self.scoreboard.is_ready(prev.tag, self.now) {
                return false;
            }
        }
        // (4) Structural. FU availability is the one global (cross-thread)
        // input and is checked by the caller at pick time, not here.
        if slot.inst.is_load() && !self.store_set_clear(id, slot) {
            return false;
        }
        // Shelf stores write straight into the store buffer at writeback.
        if slot.inst.is_store() && th.store_buffer.len() >= self.cfg.store_buffer_entries {
            return false;
        }
        true
    }

    fn store_set_clear(&self, id: InstId, slot: &Slot) -> bool {
        let th = &self.threads[slot.thread];
        let Some(set) = th.store_sets.set_of(slot.inst.pc) else {
            return true;
        };
        if th.store_sets.load_dependence(slot.inst.pc).is_none() {
            return true;
        }
        // The load belongs to a set with in-flight stores: wait until every
        // *older* store of the set has executed. (The LFST names only the
        // youngest store; hardware orders same-set stores in a chain, which
        // implies this condition.) The list is age-sorted, so the scan stops
        // at the load's own age.
        let load_age = self.slab.age(id);
        for &(age, sid) in &th.inflight_stores {
            if age >= load_age {
                break;
            }
            if !self.slab.get(sid).mem_executed
                && !self.slab.is_squashed(sid)
                && th.store_sets.set_of(self.slab.get(sid).inst.pc) == Some(set)
            {
                return false;
            }
        }
        true
    }

    /// Delivers a broadcast of `tag` to its registered IQ consumers,
    /// clearing their pending-source counts. Stale registrations (squashed
    /// consumers, possibly with a recycled id) fail the age/stage checks
    /// and are dropped.
    fn drain_tag_consumers(&mut self, tag: Tag, ready_at: u64) {
        let effective = ready_at + self.iq_forward_penalty(tag);
        let mut consumers = std::mem::take(&mut self.tag_consumers[tag.index()]);
        for (cid, cage) in consumers.drain(..) {
            if !self.slab.live_with_age(cid, cage) || self.slab.stage(cid) != Stage::Dispatched {
                continue;
            }
            let s = self.slab.get_mut(cid);
            if s.pending_srcs == 0 {
                continue;
            }
            s.pending_srcs -= 1;
            s.data_ready_cycle = s.data_ready_cycle.max(effective);
            if s.pending_srcs == 0 {
                let ready_cycle = s.data_ready_cycle;
                self.iq_waiting -= 1;
                // Last outstanding source: the ready cycle is now final,
                // so the entry can be scheduled for the select scan.
                self.ready_wheel.push(
                    self.now,
                    Event {
                        cycle: ready_cycle,
                        age: cage,
                        id: cid,
                    },
                );
            }
        }
        // Hand the (now empty) buffer back so its allocation is reused.
        self.tag_consumers[tag.index()] = consumers;
    }

    fn fu_available(&self, kind: FuKind) -> bool {
        self.fu_busy[kind.index()].iter().any(|&b| b <= self.now)
    }

    fn fu_allocate(&mut self, kind: FuKind, busy_until: u64) {
        let unit = self.fu_busy[kind.index()]
            .iter_mut()
            .find(|b| **b <= self.now)
            .expect("availability checked");
        *unit = busy_until;
        self.counters.fu_ops[kind.index()] += 1;
    }

    /// Issues `id`; returns false if the issue had to be aborted (MSHR
    /// full) with no state modified.
    fn do_issue(&mut self, id: InstId, steer: Steer) -> bool {
        let (t, inst) = {
            let s = self.slab.get(id);
            (s.thread, s.inst)
        };
        let age = self.slab.age(id);

        // Memory timing is resolved first because it can fail (MSHR full).
        let mem_outcome = if inst.is_load() {
            match self.load_data_ready_cycle(id, &inst) {
                Some(o) => Some(o),
                None => {
                    self.counters.mshr_stalls += 1;
                    return false;
                }
            }
        } else {
            None
        };

        // ---- commit to issuing ----
        let now = self.now;
        let op = inst.op;
        let fu_busy_until = if op.pipelined() {
            now + 1
        } else {
            now + op.latency() as u64
        };
        self.fu_allocate(op.fu_kind(), fu_busy_until);

        let complete = match (op, &mem_outcome) {
            (OpClass::Load, Some((ready, _, _))) => *ready,
            (OpClass::Store, _) => now + 1,
            _ => now + op.latency() as u64,
        };

        {
            self.slab.set_stage(id, Stage::Issued);
            let slot = self.slab.get_mut(id);
            slot.issue_cycle = now;
            slot.complete_cycle = complete;
            if let Some((_, level, forwarded)) = mem_outcome {
                slot.mem_level = level;
                slot.forwarded_from = forwarded;
            }
            // Loads are visible to violation scans from issue; stores'
            // addresses become visible at writeback (store_executed).
            if inst.is_load() {
                slot.mem_executed = true;
            }
        }

        // Wakeup: consumers may issue at `complete` (non-speculative load
        // wakeup — completion is known at issue in this model, which is
        // timing-equivalent to waking on data return).
        if let Some(tag) = self.slab.get(id).dest_tag {
            self.scoreboard.set_ready_at(tag, complete);
            self.tag_cluster[tag.index()] = steer;
            // The wakeup CAM compares only IQ entries still waiting on at
            // least one un-broadcast source; entries whose ready bits are
            // already latched keep their comparators dark (`counters.rs`
            // documents the per-entry-compared semantics).
            self.counters.iq_wakeup_cam += self.iq_waiting as u64;
            self.counters.prf_writes += 1;
            self.drain_tag_consumers(tag, complete);
        }

        // Oracle schedule corrections from the actual schedule (§IV-A).
        match self.cfg.steer {
            SteerPolicy::Oracle => {
                self.threads[t].oracle.observe_issue(now);
                if let Some(dest) = inst.dest {
                    self.threads[t].oracle.correct(dest, complete);
                }
            }
            SteerPolicy::Practical => {
                self.threads[t].shadow_oracle.observe_issue(now);
                if let Some(dest) = inst.dest {
                    self.threads[t].shadow_oracle.correct(dest, complete);
                }
            }
            _ => {}
        }

        // Classification (real instructions only).
        if !self.slab.get(id).wrong_path {
            let cidx = self.slab.get(id).classify_idx;
            let in_seq = self.threads[t].classifier.issue(
                cidx,
                now,
                min_writeback_latency(op),
                op.resolution_delay(),
            );
            self.slab.get_mut(id).in_sequence = in_seq;
        } else {
            // Wrong-path instructions advance the shadow tracker too.
            let cidx = self.slab.get(id).classify_idx;
            let _ = self.threads[t].classifier.issue(
                cidx,
                now,
                min_writeback_latency(op),
                op.resolution_delay(),
            );
        }

        match steer {
            Steer::Iq => {
                let rob_idx = self.slab.get(id).rob_idx.expect("IQ inst has ROB entry");
                self.threads[t].issue_tracker.issue(rob_idx);
                self.threads[t].ssr.record_iq_issue(op.resolution_delay());
                self.iq_remove(id);
                self.counters.iq_issues += 1;
            }
            Steer::Shelf => {
                let popped = self.threads[t].shelf.pop_front();
                debug_assert_eq!(popped, Some(id));
                self.counters.shelf_reads += 1;
                if inst.is_load() {
                    self.threads[t].recent_shelf_loads.push_back((id, age));
                    if self.threads[t].recent_shelf_loads.len() > 32 {
                        self.threads[t].recent_shelf_loads.pop_front();
                    }
                }
            }
        }

        acc(&mut self.counters.issued, 1);
        if steer == Steer::Shelf {
            self.counters.issued_shelf += 1;
        }
        if inst.is_load() {
            self.threads[t].add_inflight_load(age);
        }
        self.threads[t].pre_issue_count -= 1;
        self.events.push(
            now,
            Event {
                cycle: complete,
                age,
                id,
            },
        );
        true
    }

    /// Resolves a load's data-ready cycle: store forwarding, younger-load
    /// value capture (shelf loads, §III-D), or a cache access. Returns
    /// `None` if the cache access could not allocate an MSHR.
    fn load_data_ready_cycle(
        &mut self,
        id: InstId,
        inst: &DynInst,
    ) -> Option<(u64, Option<Level>, Option<u64>)> {
        let (t, steer, lq_tail) = {
            let s = self.slab.get(id);
            (s.thread, s.steer, s.lq_tail_at_dispatch)
        };
        let age = self.slab.age(id);
        let mem = inst.mem.expect("loads access memory");
        let mut searches = 0u64;
        let th = &self.threads[t];

        // Youngest older store with a known overlapping address.
        let mut best_store: Option<u64> = None;
        for (_, &sid) in th.sq.iter() {
            let s = self.slab.get(sid);
            let sage = self.slab.age(sid);
            searches += 1;
            if sage < age && s.mem_executed {
                if let Some(smem) = s.inst.mem {
                    if smem.overlaps(&mem) && best_store.is_none_or(|a| sage > a) {
                        best_store = Some(sage);
                    }
                }
            }
        }

        let mut best_young_load: Option<u64> = None;
        if steer == Steer::Shelf {
            // Shelf loads also scan younger IQ loads that issued early and
            // must take the youngest matching value (§III-D).
            for (lq_idx, &lid) in th.lq.iter() {
                if lq_idx < lq_tail {
                    continue;
                }
                searches += 1;
                let l = self.slab.get(lid);
                let lage = self.slab.age(lid);
                if lage > age && l.mem_executed && !self.slab.is_squashed(lid) {
                    if let Some(lmem) = l.inst.mem {
                        if lmem.overlaps(&mem) {
                            best_young_load =
                                Some(best_young_load.map_or(lage, |a: u64| a.max(lage)));
                        }
                    }
                }
            }
        }
        self.counters.lsq_searches += searches;

        if let Some(young) = best_young_load {
            // Value captured from the younger load: no cache access.
            return Some((self.now + 2, None, Some(young)));
        }
        if let Some(sage) = best_store {
            // Store-to-load forwarding.
            return Some((self.now + 2, None, Some(sage)));
        }
        match self
            .hierarchy
            .access_data_pc_for(inst.pc, mem.addr, false, self.now, t)
        {
            Ok(acc) => Some((acc.complete_cycle, Some(acc.level), None)),
            Err(_) => None,
        }
    }

    // ------------------------------------------------------------ writeback

    fn process_events(&mut self) {
        let idx = (self.now as usize) % EVENT_WHEEL_BUCKETS;
        let mut due = std::mem::take(&mut self.events.buckets[idx]);
        while let Some(ev) = self.events.overflow.peek() {
            if ev.cycle > self.now {
                break;
            }
            due.push(self.events.overflow.pop().expect("peeked"));
        }
        if !due.is_empty() {
            // Every due event carries this cycle; process elder
            // instructions first (the order the heap's `(cycle, age)` key
            // provided) so squashes mark younger in-flight work first.
            due.sort_unstable_by_key(|ev| ev.age);
            self.events.len -= due.len();
            // A due event is the wake-up the park contract promised: clear
            // the owner's certificate before any effect executes, so the
            // rest of this tick runs that thread at full fidelity (every
            // stage that consults parked state comes after this drain).
            if self.skip.parked != 0 {
                for ev in &due {
                    if self.slab.live_with_age(ev.id, ev.age) {
                        self.skip.parked &= !(1 << self.slab.thread_of(ev.id));
                    }
                }
            }
            #[cfg(feature = "chaos")]
            self.chaos_skip_thread_tick(&mut due);
            for ev in due.drain(..) {
                debug_assert_eq!(ev.cycle, self.now);
                let Event { id, age, .. } = ev;
                // The slot may be long gone (squashed and cleaned) — or the
                // id recycled. Verify identity via age.
                if !self.slab.live_with_age(id, age) {
                    continue;
                }
                self.writeback(id);
            }
        }
        // Hand the drained bucket back (re-entrant pushes cannot target it
        // inside the horizon, so nothing was added meanwhile).
        self.events.buckets[idx] = due;
    }

    /// [`ChaosKind::SkipThreadTick`]: at the `trigger`-th live due event,
    /// pick its thread as the victim and silently drop every live due
    /// event that thread has this cycle, as if its tick had been skipped.
    #[cfg(feature = "chaos")]
    fn chaos_skip_thread_tick(&mut self, due: &mut Vec<Event>) {
        {
            let Some(cs) = self.chaos.as_ref() else {
                return;
            };
            if cs.plan.kind != ChaosKind::SkipThreadTick || cs.fired {
                return;
            }
        }
        let (trigger, mut seen) = {
            let cs = self.chaos.as_ref().expect("checked above");
            (cs.plan.trigger, cs.seen)
        };
        let mut victim = None;
        for ev in due.iter() {
            if !self.slab.live_with_age(ev.id, ev.age) {
                continue;
            }
            if seen == trigger {
                victim = Some(self.slab.thread_of(ev.id));
                break;
            }
            seen += 1;
        }
        {
            let cs = self.chaos.as_mut().expect("checked above");
            cs.seen = seen;
            if victim.is_some() {
                cs.fired = true;
            }
        }
        if let Some(victim) = victim {
            due.retain(|ev| {
                !(self.slab.live_with_age(ev.id, ev.age) && self.slab.thread_of(ev.id) == victim)
            });
        }
    }

    fn writeback(&mut self, id: InstId) {
        let (t, inst, steer, wrong_path) = {
            let s = self.slab.get(id);
            (s.thread, s.inst, s.steer, s.wrong_path)
        };
        self.skip.note_progress(t);
        let squashed = self.slab.is_squashed(id);
        if self.slab.stage(id) == Stage::Issued {
            self.slab.set_stage(id, Stage::Completed);
        }

        if inst.is_load() {
            let age = self.slab.age(id);
            self.threads[t].remove_inflight_load(age);
        }
        if squashed {
            // A squashed in-flight instruction is filtered at writeback
            // (§III-B): no architectural effects; a shelf instruction's
            // reserved index is finally released.
            if steer == Steer::Shelf {
                if let Some(idx) = self.slab.get(id).shelf_idx {
                    self.threads[t].mark_shelf_retired(idx);
                }
            }
            if inst.is_store() {
                let age = self.slab.age(id);
                self.threads[t].remove_inflight_store(age);
            }
            // A sampled load's PLT column must not leak with the squash.
            if let Some(col) = self.slab.get_mut(id).plt_column.take() {
                self.threads[t].practical.load_completed(col);
            }
            self.slab.remove(id);
            return;
        }

        // Stores: address now visible — run ordering checks & release
        // store-set dependents.
        if inst.is_store() {
            self.store_executed(id);
        }

        // Loads: steering-table corrections. Clear the column handle so a
        // later squash walk cannot free a since-reallocated column.
        if inst.is_load() {
            if let Some(col) = self.slab.get_mut(id).plt_column.take() {
                self.threads[t].practical.load_completed(col);
            }
        }
        // Branches resolve at writeback.
        if inst.is_branch() && !wrong_path {
            self.resolve_branch(id);
            if !self.slab.contains(id) {
                return; // squash removed it (cannot happen for the branch itself)
            }
        }

        // Shelf instructions retire at writeback (§III-B): free the
        // superseded tag and release the shelf index.
        if steer == Steer::Shelf {
            let slot = self.slab.get(id);
            let idx = slot.shelf_idx.expect("shelf inst has index");
            if let Some(prev) = slot.prev_mapping {
                if prev.tag.0 != prev.pri.0 {
                    self.ext_fl.free(prev.tag.0);
                    self.counters.ext_freelist_ops += 1;
                }
            }
            // Shelf stores write through the store buffer at their commit
            // point (they are non-speculative by SSR construction).
            if inst.is_store() {
                let addr = inst.mem.expect("stores access memory").addr;
                self.threads[t].store_buffer.push_back((addr, self.now));
            }
            self.threads[t].mark_shelf_retired(idx);
        }
    }

    fn store_executed(&mut self, id: InstId) {
        let (t, pc, mem) = {
            let s = self.slab.get(id);
            (s.thread, s.inst.pc, s.inst.mem.expect("store"))
        };
        let age = self.slab.age(id);
        self.slab.get_mut(id).mem_executed = true;
        self.threads[t].store_sets.store_resolved(pc, age);
        self.threads[t].remove_inflight_store(age);

        // Memory-order violation scan: younger loads that already executed
        // with an overlapping address and did not receive their value from
        // this store or a younger one must be squashed (§III-D).
        let mut victim: Option<(InstId, u64)> = None;
        let th = &self.threads[t];
        let consider = |lid: InstId, slab: &Slab, counters: &mut Counters| {
            counters.lsq_searches += 1;
            let lage = slab.age(lid);
            if slab.is_squashed(lid) || lage <= age {
                return None;
            }
            let l = slab.get(lid);
            if !l.mem_executed {
                return None;
            }
            let lmem = l.inst.mem?;
            if !lmem.overlaps(&mem) {
                return None;
            }
            match l.forwarded_from {
                Some(f) if f >= age => None,
                _ => Some((lid, lage)),
            }
        };
        for (_, &lid) in th.lq.iter() {
            if let Some(v) = consider(lid, &self.slab, &mut self.counters) {
                if victim.is_none_or(|(_, va)| v.1 < va) {
                    victim = Some(v);
                }
            }
        }
        for i in 0..self.threads[t].recent_shelf_loads.len() {
            let (lid, lage) = self.threads[t].recent_shelf_loads[i];
            if !self.slab.live_with_age(lid, lage) {
                continue;
            }
            if let Some(v) = consider(lid, &self.slab, &mut self.counters) {
                if victim.is_none_or(|(_, va)| v.1 < va) {
                    victim = Some(v);
                }
            }
        }

        if let Some((lid, _)) = victim {
            let load_pc = self.slab.get(lid).inst.pc;
            self.threads[t].store_sets.train_violation(pc, load_pc);
            self.counters.memory_violations += 1;
            self.squash_thread(t, lid, true);
        }
    }

    fn resolve_branch(&mut self, id: InstId) {
        let (t, inst, pred, mispred) = {
            let s = self.slab.get(id);
            (
                s.thread,
                s.inst,
                s.prediction.expect("branches are predicted"),
                s.mispredicted,
            )
        };
        let br = inst.branch.expect("branch info");
        let fallthrough = inst.pc + 4;
        self.threads[t].bpred.update(
            inst.pc,
            pred,
            br.taken,
            br.next_pc,
            br.is_call,
            br.is_return,
            fallthrough,
        );
        if mispred {
            self.counters.branch_mispredicts += 1;
            // Squash everything younger than the branch, release the fetch
            // stall, and redirect (the fetch-to-dispatch pipe provides the
            // refill penalty).
            self.squash_younger_than(t, id);
            if self.threads[t].waiting_branch == Some(id) {
                self.threads[t].waiting_branch = None;
            }
        }
    }

    // --------------------------------------------------------------- squash

    /// Squashes `first_squashed` and everything younger in thread `t`.
    /// `rewind_trace` re-plays the stream from the squash point (memory
    /// violations re-execute the load; branch wrong-path squashes do not
    /// rewind because correct-path instructions were never over-fetched).
    fn squash_thread(&mut self, t: usize, first_squashed: InstId, rewind_trace: bool) {
        let pos = self.threads[t]
            .window
            .iter()
            .position(|&x| x == first_squashed)
            .expect("squash point must be in the window");
        self.squash_window_from(t, pos, rewind_trace);
    }

    /// Squashes everything strictly younger than `elder` in thread `t`.
    fn squash_younger_than(&mut self, t: usize, elder: InstId) {
        let pos = self.threads[t].window.iter().position(|&x| x == elder);
        match pos {
            Some(p) => self.squash_window_from(t, p + 1, false),
            None => {
                // The elder already left the window (committed): squash the
                // whole remaining window.
                self.squash_window_from(t, 0, false)
            }
        }
    }

    fn squash_window_from(&mut self, t: usize, pos: usize, rewind_trace: bool) {
        // Collect ids for the youngest-first RAT walk-back into a reused
        // scratch buffer (squashes are frequent enough that a fresh Vec per
        // squash shows up in the allocator profile).
        let mut victims = std::mem::take(&mut self.scratch_squash);
        victims.clear();
        victims.extend(self.threads[t].window.iter().skip(pos).copied());
        if victims.is_empty() && self.threads[t].frontend.is_empty() {
            self.scratch_squash = victims;
            return;
        }
        let mut rewind_seq: Option<u64> = None;
        let mut min_rob: Option<u64> = None;
        let mut min_lq: Option<u64> = None;
        let mut min_sq: Option<u64> = None;
        let mut min_classify: Option<u64> = None;

        for &id in victims.iter().rev() {
            let stage = self.slab.stage(id);
            let age = self.slab.age(id);
            let slot = self.slab.get(id);
            // Completed shelf instructions are committed: a correct SSR
            // never lets a squash reach one (counted as a self-check).
            if slot.steer == Steer::Shelf && stage == Stage::Completed && !self.slab.is_squashed(id)
            {
                self.threads[t].late_shelf_commits += 1;
                continue;
            }
            let seq = slot.seq;
            let wrong_path = slot.wrong_path;
            let steer = slot.steer;
            let inst = slot.inst;
            let dest_pri = slot.dest_pri;
            let dest_tag = slot.dest_tag;
            let prev = slot.prev_mapping;
            let rob_idx = slot.rob_idx;
            let lq_idx = slot.lq_idx;
            let sq_idx = slot.sq_idx;
            let shelf_idx = slot.shelf_idx;
            let classify_idx = slot.classify_idx;
            let pending_srcs = slot.pending_srcs;

            if !wrong_path {
                rewind_seq = Some(seq);
            }
            if stage == Stage::Dispatched || stage == Stage::Issued || stage == Stage::Completed {
                min_classify = Some(classify_idx);
            }

            // Restore the RAT and free this instruction's allocations.
            if let (Some(dest), Some(p)) = (inst.dest, prev) {
                self.threads[t].rat.set(dest, p);
                self.counters.rat_writes += 1;
                match steer {
                    Steer::Iq => {
                        self.phys_fl.free(dest_pri.expect("IQ dest has PRI").0);
                        self.counters.freelist_ops += 1;
                    }
                    Steer::Shelf => {
                        self.ext_fl.free(dest_tag.expect("shelf dest has tag").0);
                        self.counters.ext_freelist_ops += 1;
                    }
                }
            }

            if let Some(r) = rob_idx {
                min_rob = Some(min_rob.map_or(r, |m: u64| m.min(r)));
            }
            if let Some(l) = lq_idx {
                min_lq = Some(min_lq.map_or(l, |m: u64| m.min(l)));
            }
            if let Some(s) = sq_idx {
                min_sq = Some(min_sq.map_or(s, |m: u64| m.min(s)));
            }

            if inst.is_store() {
                self.threads[t].store_sets.store_resolved(inst.pc, age);
                self.threads[t].remove_inflight_store(age);
            }
            if self.threads[t].waiting_branch == Some(id) {
                self.threads[t].waiting_branch = None;
            }
            // Squashed sampled loads release their PLT column here if they
            // never issued (issued ones release at their filtering event;
            // completed ones already released at writeback — their handle
            // is cleared, so the take() below is a no-op for them).
            if stage == Stage::Dispatched || stage == Stage::Completed {
                if let Some(col) = self.slab.get_mut(id).plt_column.take() {
                    self.threads[t].practical.load_completed(col);
                }
            }

            #[cfg(feature = "chaos")]
            self.chaos_on_squash_victim(id);
            self.trace_end(id, EndKind::Squash);
            match stage {
                Stage::Dispatched => {
                    // Not yet issued: fully removable now.
                    self.threads[t].pre_issue_count -= 1;
                    match steer {
                        Steer::Iq => {
                            self.iq_remove(id);
                            // Leave the waiting population; any stale
                            // consumer-list registrations are filtered at
                            // their tag's broadcast.
                            if pending_srcs > 0 {
                                self.iq_waiting -= 1;
                            }
                        }
                        Steer::Shelf => {
                            // Remove from the shelf FIFO (it must be at the
                            // tail side) and release its index immediately.
                            let back = self.threads[t].shelf.pop_back();
                            debug_assert_eq!(back, Some(id));
                            let idx = shelf_idx.expect("shelf inst has idx");
                            self.threads[t].mark_shelf_retired(idx);
                        }
                    }
                    self.counters.squashed += 1;
                    self.slab.remove(id);
                }
                Stage::Issued => {
                    // In flight: filtered at writeback. The squash kill
                    // signal reaches the writeback arbiter within a pipe
                    // drain, so the filtering (and the release of a shelf
                    // index reservation) need not wait for a cache miss to
                    // return — schedule an early filtering event; whichever
                    // event fires first wins (the guard in process_events
                    // ignores the later one).
                    self.slab.set_squashed(id, true);
                    self.counters.squashed += 1;
                    self.events.push(
                        self.now,
                        Event {
                            cycle: self.now + 4,
                            age,
                            id,
                        },
                    );
                }
                Stage::Completed => {
                    // Completed IQ instruction waiting to retire.
                    debug_assert_eq!(steer, Steer::Iq);
                    self.counters.squashed += 1;
                    self.slab.remove(id);
                }
                Stage::Frontend | Stage::Retired => unreachable!("not in window"),
            }
        }
        self.threads[t].window.truncate(pos);

        // Structure tail rollbacks.
        if let Some(r) = min_rob {
            self.threads[t].rob.truncate_from(r);
            self.threads[t].issue_tracker.squash_from(r);
        }
        if let Some(l) = min_lq {
            self.threads[t].lq.truncate_from(l);
        }
        if let Some(s) = min_sq {
            self.threads[t].sq.truncate_from(s);
        }
        if let Some(c) = min_classify {
            self.threads[t].classifier.squash_from(c);
        }
        self.threads[t].last_steer = match self.threads[t].window.back() {
            Some(&id) => Some(self.slab.get(id).steer),
            None => None,
        };

        // Flush the front end (everything there is younger than the squash
        // point); the victim scratch buffer is reused for the drain.
        victims.clear();
        victims.extend(self.threads[t].frontend.drain(..));
        for &id in &victims {
            let slot = self.slab.get(id);
            if !slot.wrong_path {
                rewind_seq = Some(rewind_seq.map_or(slot.seq, |r: u64| r.min(slot.seq)));
            }
            if self.threads[t].waiting_branch == Some(id) {
                self.threads[t].waiting_branch = None;
            }
            // A victim that attempted (and failed) dispatch may hold a
            // memoized PLT column; release it or the column leaks.
            if let Some((_, Some(col))) = self.slab.get_mut(id).steer_memo.take() {
                self.threads[t].practical.load_completed(col);
            }
            self.threads[t].pre_issue_count -= 1;
            self.slab.remove(id);
        }

        if rewind_trace {
            if let Some(seq) = rewind_seq {
                self.threads[t].trace.rewind_to(seq);
            }
        } else if let Some(seq) = rewind_seq {
            // Branch squash: any real front-end instructions flushed above
            // must be re-fetched.
            self.threads[t].trace.rewind_to(seq);
        }
        self.threads[t].fetch_stalled_until = self.threads[t].fetch_stalled_until.max(self.now + 2);
        self.scratch_squash = victims;
    }

    // --------------------------------------------------------------- commit

    fn commit_stage(&mut self) {
        let mut budget = self.cfg.commit_width;
        let n = self.threads.len();
        // Rotate the starting thread so no context monopolizes commit
        // bandwidth.
        let start = (self.now as usize) % n;
        for off in 0..n {
            let t = (start + off) % n;
            // TSO: shelf stores hold SQ entries until writeback; release
            // contiguously completed ones at the head.
            if self.cfg.memory_model == MemoryModel::Tso {
                while let Some(&sq_head) = self.threads[t].sq.front() {
                    let slot = self.slab.get(sq_head);
                    if slot.steer == Steer::Shelf
                        && self.slab.stage(sq_head) == Stage::Completed
                        && !self.slab.is_squashed(sq_head)
                    {
                        self.threads[t].sq.pop_front();
                        self.skip.note_progress(t);
                    } else {
                        break;
                    }
                }
            }
            while budget > 0 {
                let Some(&head) = self.threads[t].window.front() else {
                    break;
                };
                let slot = self.slab.get(head);
                match slot.steer {
                    Steer::Shelf => {
                        if self.slab.stage(head) != Stage::Completed || self.slab.is_squashed(head)
                        {
                            break;
                        }
                        // TSO shelf stores leave the window only after their
                        // SQ entry has been released.
                        if let Some(sq_idx) = slot.sq_idx {
                            if self.threads[t].sq.get(sq_idx).is_some() {
                                break;
                            }
                        }
                        let in_seq = slot.in_sequence;
                        let wrong_path = slot.wrong_path;
                        if !wrong_path {
                            self.record_commit(head);
                            self.observe_commit(head);
                        }
                        self.trace_end(head, EndKind::Commit);
                        self.threads[t].window.pop_front();
                        self.skip.note_progress(t);
                        self.slab.remove(head);
                        if !wrong_path {
                            self.threads[t].committed += 1;
                            self.threads[t].classifier.commit(in_seq);
                            acc(&mut self.counters.committed, 1);
                        }
                        budget -= 1;
                    }
                    Steer::Iq => {
                        if self.slab.stage(head) != Stage::Completed {
                            self.counters.commit_stalls[0] += 1;
                            break;
                        }
                        debug_assert!(
                            !self.slab.is_squashed(head),
                            "squashed completed IQ inst left in window"
                        );
                        // ROB-head check.
                        let rob_idx = slot.rob_idx.expect("IQ inst has ROB idx");
                        debug_assert_eq!(self.threads[t].rob.head_index(), Some(rob_idx));
                        // Coordinate with shelf retirement (§III-B): elder
                        // shelf instructions must have written back.
                        if self.threads[t].shelf_retire_ptr < slot.shelf_squash_idx {
                            self.counters.commit_stalls[1] += 1;
                            break;
                        }
                        // Stores move to the store buffer; stall if full.
                        if slot.inst.is_store()
                            && self.threads[t].store_buffer.len() >= self.cfg.store_buffer_entries
                        {
                            self.counters.commit_stalls[2] += 1;
                            break;
                        }
                        let inst = slot.inst;
                        let in_seq = slot.in_sequence;
                        let wrong_path = slot.wrong_path;
                        let prev = slot.prev_mapping;

                        self.threads[t].rob.pop_front();
                        self.counters.rob_reads += 1;
                        if inst.is_load() {
                            self.threads[t].lq.pop_front();
                        }
                        if inst.is_store() {
                            self.threads[t].sq.pop_front();
                            let addr = inst.mem.expect("store").addr;
                            self.threads[t].store_buffer.push_back((addr, self.now));
                        }
                        if let Some(p) = prev {
                            self.phys_fl.free(p.pri.0);
                            self.counters.freelist_ops += 1;
                            if p.tag.0 != p.pri.0 {
                                self.ext_fl.free(p.tag.0);
                                self.counters.ext_freelist_ops += 1;
                            }
                        }
                        if !wrong_path {
                            self.record_commit(head);
                            self.observe_commit(head);
                        }
                        self.trace_end(head, EndKind::Commit);
                        self.threads[t].window.pop_front();
                        self.skip.note_progress(t);
                        self.slab.remove(head);
                        if !wrong_path {
                            self.threads[t].committed += 1;
                            self.threads[t].classifier.commit(in_seq);
                            acc(&mut self.counters.committed, 1);
                        }
                        budget -= 1;
                    }
                }
            }
        }
    }

    fn drain_store_buffers(&mut self) {
        for t in 0..self.threads.len() {
            if let Some(&(addr, ready)) = self.threads[t].store_buffer.front() {
                if ready <= self.now
                    && self
                        .hierarchy
                        .access_data_for(addr, true, self.now, t)
                        .is_ok()
                {
                    self.threads[t].store_buffer.pop_front();
                    self.skip.note_progress(t);
                }
            }
        }
    }

    // ----------------------------------------------------------- sanitizer

    /// The dynamic invariant sanitizer: audits token conservation and queue
    /// bookkeeping at the end of every cycle, panicking with a structured
    /// report on the first violating cycle (`--features sanitize` only; the
    /// default build compiles this out entirely).
    ///
    /// Audited invariants:
    ///
    /// 1. Queue occupancy never exceeds capacity (IQ, per-thread shelf).
    /// 2. Every IQ / shelf resident is a live `Dispatched` instruction.
    /// 3. Shelf virtual-index bookkeeping: the retire bitvector covers
    ///    exactly `shelf_next_idx - shelf_retire_ptr` indices.
    /// 4. ICOUNT accounting: `pre_issue_count` equals the reconstructed
    ///    front-end + dispatched-but-unissued population.
    /// 5. Physical-register conservation: allocated registers equal the
    ///    per-thread architectural state plus one rename register per
    ///    in-window IQ instruction with a destination.
    /// 6. Extension-tag conservation: allocated tags equal the RAT entries
    ///    currently holding extension mappings plus the superseded
    ///    extension mappings held by in-window instructions (IQ holders
    ///    release at retire; shelf holders release at writeback, so
    ///    completed shelf instructions no longer hold one).
    #[cfg(feature = "sanitize")]
    fn audit_invariants(&self) {
        use std::fmt::Write as _;
        let mut v = String::new();

        if self.iq.len() > self.cfg.iq_entries {
            writeln!(
                v,
                "IQ occupancy {} > capacity {}",
                self.iq.len(),
                self.cfg.iq_entries
            )
            .expect("write");
        }
        for &id in &self.iq {
            let s = self.slab.get(id);
            if self.slab.stage(id) != Stage::Dispatched || s.steer != Steer::Iq {
                writeln!(
                    v,
                    "IQ resident {id} in stage {:?} steered {:?}",
                    self.slab.stage(id),
                    s.steer
                )
                .expect("write");
            }
        }
        let waiting = self
            .iq
            .iter()
            .filter(|&&id| self.slab.get(id).pending_srcs > 0)
            .count();
        if waiting != self.iq_waiting {
            writeln!(
                v,
                "iq_waiting {} disagrees with recount {waiting}",
                self.iq_waiting
            )
            .expect("write");
        }
        for &id in &self.iq {
            let s = self.slab.get(id);
            if s.pending_srcs == 0 && (s.data_ready_cycle <= self.now) != self.iq_srcs_ready(s) {
                writeln!(
                    v,
                    "IQ entry {id}: cached data_ready_cycle {} disagrees with \
                     scoreboard recomputation at cycle {}",
                    s.data_ready_cycle, self.now
                )
                .expect("write");
            }
        }

        let mut iq_holders = 0usize;
        let mut ext_holders = 0usize;
        for (t, th) in self.threads.iter().enumerate() {
            if th.shelf.len() > th.shelf_capacity {
                writeln!(
                    v,
                    "thread {t}: shelf occupancy {} > capacity {}",
                    th.shelf.len(),
                    th.shelf_capacity
                )
                .expect("write");
            }
            for &id in &th.shelf {
                let s = self.slab.get(id);
                if self.slab.stage(id) != Stage::Dispatched || s.steer != Steer::Shelf {
                    writeln!(
                        v,
                        "thread {t}: shelf resident {id} in stage {:?} steered {:?}",
                        self.slab.stage(id),
                        s.steer
                    )
                    .expect("write");
                }
            }

            let index_span = th.shelf_next_idx - th.shelf_retire_ptr;
            if th.shelf_retired.len() as u64 != index_span {
                writeln!(
                    v,
                    "thread {t}: shelf retire bitvector covers {} indices, but \
                     next_idx {} - retire_ptr {} = {index_span}",
                    th.shelf_retired.len(),
                    th.shelf_next_idx,
                    th.shelf_retire_ptr
                )
                .expect("write");
            }

            let dispatched_unissued = th
                .window
                .iter()
                .filter(|&&id| self.slab.stage(id) == Stage::Dispatched)
                .count();
            let expected_pre_issue = th.frontend.len() + dispatched_unissued;
            if th.pre_issue_count != expected_pre_issue {
                writeln!(
                    v,
                    "thread {t}: pre_issue_count {} != frontend {} + dispatched {}",
                    th.pre_issue_count,
                    th.frontend.len(),
                    dispatched_unissued
                )
                .expect("write");
            }

            for &id in &th.window {
                let s = self.slab.get(id);
                if s.steer == Steer::Iq && s.dest_pri.is_some() {
                    iq_holders += 1;
                }
                if let Some(prev) = s.prev_mapping {
                    if self.ext_fl.contains_range(prev.tag.0)
                        && (s.steer == Steer::Iq || self.slab.stage(id) != Stage::Completed)
                    {
                        ext_holders += 1;
                    }
                }
            }
        }

        let arch = self.threads.len() * shelfsim_isa::NUM_ARCH_REGS;
        let expected_phys = arch + iq_holders;
        if self.phys_fl.in_use() != expected_phys {
            writeln!(
                v,
                "physical-register leak: {} allocated != {arch} architectural + \
                 {iq_holders} in-window IQ destinations",
                self.phys_fl.in_use()
            )
            .expect("write");
        }

        let rat_ext: usize = self
            .threads
            .iter()
            .map(|th| {
                th.rat
                    .iter()
                    .filter(|(_, m)| self.ext_fl.contains_range(m.tag.0))
                    .count()
            })
            .sum();
        let expected_ext = rat_ext + ext_holders;
        if self.ext_fl.in_use() != expected_ext {
            writeln!(
                v,
                "extension-tag leak: {} allocated != {rat_ext} live RAT mappings + \
                 {ext_holders} superseded in-window holders",
                self.ext_fl.in_use()
            )
            .expect("write");
        }

        assert!(
            v.is_empty(),
            "sanitizer: pipeline invariant violation(s) at cycle {}:\n{v}\
             counters: dispatched={} issued={} committed={} squashed={}",
            self.now,
            self.counters.dispatched,
            self.counters.issued,
            self.counters.committed,
            self.counters.squashed,
        );
    }
}

enum DispatchOutcome {
    Dispatched,
    Stalled(StallCause),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_heap_orders_by_cycle_then_age() {
        let mut heap = BinaryHeap::new();
        heap.push(Event {
            cycle: 10,
            age: 5,
            id: 0,
        });
        heap.push(Event {
            cycle: 9,
            age: 9,
            id: 1,
        });
        heap.push(Event {
            cycle: 10,
            age: 2,
            id: 2,
        });
        // Earliest cycle first; within a cycle, the elder (smaller age)
        // first — a misspeculation squash must run before younger same-cycle
        // shelf writebacks.
        assert_eq!(heap.pop().map(|e| e.id), Some(1));
        assert_eq!(heap.pop().map(|e| e.id), Some(2));
        assert_eq!(heap.pop().map(|e| e.id), Some(0));
    }

    #[test]
    fn min_writeback_latency_is_l1_floor_for_loads() {
        assert_eq!(min_writeback_latency(OpClass::Load), 2);
        assert_eq!(min_writeback_latency(OpClass::IntAlu), 1);
        assert_eq!(min_writeback_latency(OpClass::IntDiv), 12);
    }

    #[test]
    fn thread_shelf_retire_machinery() {
        // Build a minimal thread via a real core to exercise the retire
        // bitvector: allocate three indices, retire out of order.
        let mut retired = std::collections::VecDeque::from([false, false, false]);
        let mut ptr = 0u64;
        let mark = |idx: u64, retired: &mut std::collections::VecDeque<bool>, ptr: &mut u64| {
            retired[(idx - *ptr) as usize] = true;
            while retired.front() == Some(&true) {
                retired.pop_front();
                *ptr += 1;
            }
        };
        mark(1, &mut retired, &mut ptr);
        assert_eq!(ptr, 0, "hole at index 0 blocks the pointer");
        mark(0, &mut retired, &mut ptr);
        assert_eq!(ptr, 2, "contiguous prefix retires");
        mark(2, &mut retired, &mut ptr);
        assert_eq!(ptr, 3);
    }
}
