//! In-flight instruction state: the simulator's per-instruction record from
//! fetch to retirement.

use shelfsim_isa::DynInst;
use shelfsim_mem::Level;
use shelfsim_uarch::{Mapping, PhysReg, Prediction, Tag};

/// Handle to an in-flight instruction in the [`Slab`].
pub type InstId = u32;

/// Which queue an instruction was dispatched to (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steer {
    /// Conventional unordered issue queue (reordered instructions).
    Iq,
    /// The per-thread FIFO shelf (in-sequence instructions).
    Shelf,
}

/// Lifecycle of an in-flight instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// In the fetch-to-dispatch pipe.
    Frontend,
    /// Renamed and waiting in the IQ or the shelf.
    Dispatched,
    /// Issued to a functional unit, executing.
    Issued,
    /// Execution complete (written back or squash-filtered).
    Completed,
    /// Retired architecturally.
    Retired,
}

/// The full in-flight record of one dynamic instruction.
///
/// The three hottest fields — dispatch age, lifecycle stage, and squashed
/// flag — live in the [`Slab`]'s structure-of-arrays side tables, not here:
/// identity checks and stage filters in the per-cycle loops (ready-pool
/// compaction, event identity, commit gating, squash walks) touch compact
/// parallel arrays instead of dragging whole `Slot` records through the
/// cache. Access them via [`Slab::age`], [`Slab::stage`], and
/// [`Slab::is_squashed`].
#[derive(Clone, Debug)]
pub struct Slot {
    /// Owning hardware thread.
    pub thread: usize,
    /// Trace sequence number (`u64::MAX` for synthetic wrong-path
    /// instructions, which have no trace position).
    pub seq: u64,
    /// The decoded instruction.
    pub inst: DynInst,
    /// Steering decision.
    pub steer: Steer,
    /// Memoized steering decision `(steer, plt_column)` from the first
    /// dispatch attempt. A head blocked on resources retries dispatch every
    /// cycle; without the memo each retry would re-mutate the prediction
    /// tables (RCT updates, a fresh PLT column per retry — a column leak)
    /// and re-count the decision.
    pub steer_memo: Option<(Steer, Option<u8>)>,
    /// Synthetic wrong-path instruction (fetched past a mispredicted
    /// branch; never retires).
    pub wrong_path: bool,

    // ---- rename results ----
    /// Source wakeup tags.
    pub src_tags: [Option<Tag>; 2],
    /// Destination physical register (IQ: newly allocated; shelf: reused).
    pub dest_pri: Option<PhysReg>,
    /// Destination wakeup tag (IQ: == PRI; shelf: extension tag).
    pub dest_tag: Option<Tag>,
    /// The mapping this instruction replaced (for squash walk-back and
    /// retirement-time freeing).
    pub prev_mapping: Option<Mapping>,
    /// IQ entries: source tags whose producers had not yet broadcast at
    /// dispatch. The wakeup CAM only compares entries still waiting on a
    /// source (`pending_srcs > 0`); once every source has been broadcast the
    /// ready bits are latched and the comparators stay dark.
    pub pending_srcs: u8,
    /// IQ entries: cycle all sources are ready (including any cross-cluster
    /// forwarding penalty). Maintained incrementally — set from the
    /// scoreboard at dispatch for already-broadcast sources and folded in
    /// at each later broadcast — so the per-cycle select scan is a single
    /// comparison. Valid once `pending_srcs == 0`; broadcast ready times
    /// are immutable while a consumer waits (the in-order issue barrier
    /// keeps a source tag from being freed and re-broadcast before every
    /// registered consumer has issued).
    pub data_ready_cycle: u64,

    // ---- structure indices ----
    /// ROB index (IQ instructions only).
    pub rob_idx: Option<u64>,
    /// Shelf virtual index (shelf instructions only).
    pub shelf_idx: Option<u64>,
    /// LQ index (IQ loads only).
    pub lq_idx: Option<u64>,
    /// SQ index (IQ stores only).
    pub sq_idx: Option<u64>,
    /// Current position in the issue queue's backing vector (IQ residents
    /// only; maintained across swap-removes so issue and squash need no
    /// linear IQ scan to find the entry).
    pub iq_pos: u32,
    /// For shelf instructions: the issue-tracking barrier — the thread's ROB
    /// tail at dispatch; the shelf head may issue only after the tracking
    /// head passes it (§III-A).
    pub iq_barrier: u64,
    /// For shelf instructions: first of its run (triggers the IQ→shelf SSR
    /// copy when it becomes order-eligible, §III-B).
    pub first_of_run: bool,
    /// Set once this instruction performed its run's SSR copy.
    pub ssr_copied: bool,
    /// For IQ instructions: the shelf index the *next* shelf instruction
    /// would get — the shelf squash index recorded at dispatch (§III-B).
    pub shelf_squash_idx: u64,
    /// For shelf memory ops: the thread's LQ tail at dispatch (younger IQ
    /// loads to scan live at indices `>= lq_tail`... older ones below).
    pub lq_tail_at_dispatch: u64,
    /// For shelf memory ops: the thread's SQ tail at dispatch.
    pub sq_tail_at_dispatch: u64,

    // ---- timing ----
    /// Cycle fetched.
    pub fetch_cycle: u64,
    /// Cycle renamed/dispatched.
    pub dispatch_cycle: u64,
    /// Cycle issued.
    pub issue_cycle: u64,
    /// Cycle execution completes (writeback).
    pub complete_cycle: u64,

    // ---- memory ----
    /// Deepest cache level the access reached.
    pub mem_level: Option<Level>,
    /// Address has been computed and LSQ scans performed.
    pub mem_executed: bool,
    /// Age of the store this load received its value from (forwarding).
    pub forwarded_from: Option<u64>,
    /// Practical-steering PLT column sampled for this load.
    pub plt_column: Option<u8>,

    // ---- control ----
    /// Prediction made at fetch (branches).
    pub prediction: Option<Prediction>,
    /// Fetch-time knowledge that the prediction was wrong; triggers a squash
    /// and redirect when the branch resolves.
    pub mispredicted: bool,

    // ---- classification (paper §II) ----
    /// Classified in-sequence at issue (issued in program order with
    /// speculation resolved — would not have stalled an in-order core).
    pub in_sequence: bool,
    /// Index in the thread's classification shadow tracker.
    pub classify_idx: u64,
}

impl Slot {
    /// Creates a fresh slot for a fetched instruction.
    pub fn new(thread: usize, seq: u64, inst: DynInst, fetch_cycle: u64) -> Self {
        Slot {
            thread,
            seq,
            inst,
            steer: Steer::Iq,
            steer_memo: None,
            wrong_path: false,
            src_tags: [None; 2],
            dest_pri: None,
            dest_tag: None,
            prev_mapping: None,
            pending_srcs: 0,
            data_ready_cycle: 0,
            rob_idx: None,
            shelf_idx: None,
            lq_idx: None,
            sq_idx: None,
            iq_pos: 0,
            iq_barrier: 0,
            first_of_run: false,
            ssr_copied: false,
            shelf_squash_idx: 0,
            lq_tail_at_dispatch: 0,
            sq_tail_at_dispatch: 0,
            fetch_cycle,
            dispatch_cycle: 0,
            issue_cycle: 0,
            complete_cycle: 0,
            mem_level: None,
            mem_executed: false,
            forwarded_from: None,
            plt_column: None,
            prediction: None,
            mispredicted: false,
            in_sequence: false,
            classify_idx: 0,
        }
    }
}

/// A slab of in-flight instruction slots with id recycling.
///
/// Structure-of-arrays layout for the hot per-instruction state: liveness,
/// dispatch age, lifecycle stage, and the squashed flag live in dense
/// parallel arrays indexed by [`InstId`], so the per-cycle scans (ready-pool
/// compaction, event identity checks, commit gating, squash walks) stay
/// within a few cache lines instead of striding over full [`Slot`] records.
#[derive(Clone, Debug, Default)]
pub struct Slab {
    slots: Vec<Option<Slot>>,
    /// `alive[id]`: the id refers to a live slot (mirrors `slots[id].is_some()`).
    alive: Vec<bool>,
    /// Global dispatch age of `id` (0 until dispatch assigns one).
    ages: Vec<u64>,
    /// Lifecycle stage of `id`.
    stages: Vec<Stage>,
    /// Squashed-by-misspeculation flag of `id` (a squashed shelf
    /// instruction keeps its shelf index reserved until its writeback
    /// moment, per §III-B).
    squashed: Vec<bool>,
    /// Owning hardware thread of `id`. Dense so the skip engine's wheel-
    /// drain wake path (map each due event/ready-wheel entry to the thread
    /// it wakes) walks a flat array instead of dereferencing full slots.
    threads: Vec<usize>,
    free: Vec<InstId>,
    live: usize,
}

impl Slab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a slot, returning its id. The SoA side tables start as
    /// `(age 0, Stage::Frontend, not squashed)`.
    pub fn insert(&mut self, slot: Slot) -> InstId {
        self.live += 1;
        let thread = slot.thread;
        let id = if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(slot);
            id
        } else {
            self.slots.push(Some(slot));
            (self.slots.len() - 1) as InstId
        };
        let i = id as usize;
        if i == self.alive.len() {
            self.alive.push(true);
            self.ages.push(0);
            self.stages.push(Stage::Frontend);
            self.squashed.push(false);
            self.threads.push(thread);
        } else {
            self.alive[i] = true;
            self.ages[i] = 0;
            self.stages[i] = Stage::Frontend;
            self.squashed[i] = false;
            self.threads[i] = thread;
        }
        id
    }

    /// Removes a slot, recycling its id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn remove(&mut self, id: InstId) -> Slot {
        let s = self.slots[id as usize]
            .take()
            .expect("removing a dead instruction slot");
        self.alive[id as usize] = false;
        self.free.push(id);
        self.live -= 1;
        s
    }

    /// Borrows a live slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn get(&self, id: InstId) -> &Slot {
        self.slots[id as usize]
            .as_ref()
            .expect("dead instruction slot")
    }

    /// Mutably borrows a live slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn get_mut(&mut self, id: InstId) -> &mut Slot {
        self.slots[id as usize]
            .as_mut()
            .expect("dead instruction slot")
    }

    /// Returns `true` if `id` refers to a live slot.
    #[inline]
    pub fn contains(&self, id: InstId) -> bool {
        self.alive.get(id as usize).copied().unwrap_or(false)
    }

    /// Identity check for possibly-stale `(id, age)` handles (event wheel
    /// entries, ready-pool entries, recent-load rings): the id is live *and*
    /// still refers to the same dispatched instruction.
    #[inline]
    pub fn live_with_age(&self, id: InstId, age: u64) -> bool {
        self.contains(id) && self.ages[id as usize] == age
    }

    /// Global dispatch age of a live slot.
    #[inline]
    pub fn age(&self, id: InstId) -> u64 {
        self.ages[id as usize]
    }

    /// Sets the dispatch age (rename-stage allocation).
    #[inline]
    pub fn set_age(&mut self, id: InstId, age: u64) {
        self.ages[id as usize] = age;
    }

    /// Lifecycle stage of a live slot.
    #[inline]
    pub fn stage(&self, id: InstId) -> Stage {
        self.stages[id as usize]
    }

    /// Advances the lifecycle stage.
    #[inline]
    pub fn set_stage(&mut self, id: InstId, stage: Stage) {
        self.stages[id as usize] = stage;
    }

    /// Owning hardware thread of a live slot (O(1), SoA side table).
    #[inline]
    pub fn thread_of(&self, id: InstId) -> usize {
        self.threads[id as usize]
    }

    /// Whether the slot was squashed by a misspeculation.
    #[inline]
    pub fn is_squashed(&self, id: InstId) -> bool {
        self.squashed[id as usize]
    }

    /// Marks the slot squashed (it may still be in an execution pipe).
    #[inline]
    pub fn set_squashed(&mut self, id: InstId, squashed: bool) {
        self.squashed[id as usize] = squashed;
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no slots are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_isa::{ArchReg, OpClass};

    fn dummy() -> Slot {
        Slot::new(0, 0, DynInst::alu(OpClass::IntAlu, ArchReg::int(1), &[]), 0)
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = Slab::new();
        let a = slab.insert(dummy());
        let b = slab.insert(dummy());
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert!(slab.contains(a));
        slab.set_age(a, 42);
        assert_eq!(slab.age(a), 42);
        assert!(slab.live_with_age(a, 42));
        assert!(!slab.live_with_age(a, 41));
        slab.remove(a);
        assert!(!slab.contains(a));
        assert!(!slab.live_with_age(a, 42));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn soa_side_tables_reset_on_id_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert(dummy());
        slab.set_age(a, 7);
        slab.set_stage(a, Stage::Issued);
        slab.set_squashed(a, true);
        slab.remove(a);
        let b = slab.insert(Slot::new(
            3,
            0,
            DynInst::alu(OpClass::IntAlu, ArchReg::int(1), &[]),
            0,
        ));
        assert_eq!(a, b, "id recycled");
        assert_eq!(slab.age(b), 0);
        assert_eq!(slab.stage(b), Stage::Frontend);
        assert!(!slab.is_squashed(b));
        assert_eq!(slab.thread_of(b), 3, "thread table follows the new owner");
    }

    #[test]
    fn ids_are_recycled() {
        let mut slab = Slab::new();
        let a = slab.insert(dummy());
        slab.remove(a);
        let b = slab.insert(dummy());
        assert_eq!(a, b, "freed ids are reused");
    }

    #[test]
    #[should_panic(expected = "dead instruction slot")]
    fn get_dead_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(dummy());
        slab.remove(a);
        let _ = slab.get(a);
    }

    #[test]
    fn new_slot_defaults() {
        let s = dummy();
        assert!(!s.wrong_path);
        assert_eq!(s.steer, Steer::Iq);
        assert!(s.steer_memo.is_none());
    }
}
