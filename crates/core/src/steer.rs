//! Instruction steering policies (paper §IV).
//!
//! The microarchitecture executes correctly under *any* steering policy;
//! steering only affects performance. Four policies are provided:
//! always-IQ (conventional OOO), always-shelf (≈ in-order), the practical
//! RCT/PLT hardware mechanism (§IV-B), and the greedy oracle (§IV-A).

use crate::counters::Counters;
use crate::inst::Steer;
use shelfsim_isa::{ArchReg, DynInst, OpClass, NUM_ARCH_REGS};
use shelfsim_uarch::{ParentLoadsTable, ReadyCycleTable};

/// Predicted-issue horizon (cycles) beyond which an instruction is kept in
/// the IQ rather than parked at the shelf head (head-of-line blocking
/// guard).
const HEAD_PARK_LIMIT: u32 = 12;

/// Predicted execution latency used by both steering predictors.
///
/// Loads are predicted as L1 hits ("By predicting that all loads hit in L1,
/// we avoid the need for any prediction table", §IV-B): address generation
/// folded into the 2-cycle L1D load-to-use.
pub fn predicted_latency(op: OpClass) -> u32 {
    match op {
        OpClass::Load => 2,
        _ => op.latency(),
    }
}

/// The practical steering hardware of one thread: Ready Cycle Table +
/// earliest-allowable issue/writeback trackers + Parent Loads Table
/// (Figure 9).
#[derive(Clone, Debug)]
pub struct PracticalSteer {
    rct: ReadyCycleTable,
    plt: ParentLoadsTable,
    /// Countdown to the earliest cycle a new shelf instruction could issue
    /// (max predicted issue cycle over all previous instructions).
    earliest_issue: u32,
    /// Countdown to the earliest allowable shelf writeback (max speculation
    /// resolution cycle over all previous instructions).
    earliest_writeback: u32,
    /// Countdown to when the shelf head port frees up: the shelf issues at
    /// most one instruction per cycle per thread, so consecutive shelf
    /// instructions serialize even when their operands are ready.
    shelf_next_free: u32,
    saturation: u32,
}

impl PracticalSteer {
    /// Creates the steering state with `rct_bits`-wide counters and
    /// `plt_columns` sampled loads.
    pub fn new(rct_bits: u32, plt_columns: u32) -> Self {
        let rct = ReadyCycleTable::new(rct_bits);
        let saturation = rct.saturation();
        PracticalSteer {
            rct,
            plt: ParentLoadsTable::new(plt_columns),
            earliest_issue: 0,
            earliest_writeback: 0,
            shelf_next_free: 0,
            saturation,
        }
    }

    /// Decides where to steer `inst` and updates the predicted schedule.
    ///
    /// `source_late(reg)` reports a detected schedule error on a source: the
    /// RCT predicts it ready but the rename-stage ready bit says otherwise
    /// (the dependency-checking logic of Figure 9 reads both). A known-late
    /// source means the predicted tie is bogus, so the instruction is kept
    /// in the IQ where the stall does not block younger instructions.
    ///
    /// Returns the steering decision and the PLT column sampled, if the
    /// instruction is a load that got one.
    pub fn decide(
        &mut self,
        inst: &DynInst,
        mut source_late: impl FnMut(ArchReg) -> bool,
        counters: &mut Counters,
    ) -> (Steer, Option<u8>) {
        let iq_issue = inst
            .sources()
            .map(|r| self.rct.cycles_until_ready(r))
            .max()
            .unwrap_or(0);
        let lat = predicted_latency(inst.op);
        let iq_complete = iq_issue + lat;
        let shelf_issue = iq_issue.max(self.earliest_issue).max(self.shelf_next_free);
        let shelf_complete = (shelf_issue + lat).max(self.earliest_writeback);

        // Break ties in favor of the shelf (§IV-A applies to the oracle; the
        // practical mechanism uses the same rule) — unless a source is
        // observably behind schedule: either its RCT counter expired while
        // the register is still not ready, or its counter is frozen because
        // a parent load is known to be running late (Figure 9's stalled-
        // loads machinery). A slipping schedule makes the predicted tie
        // meaningless, and a late instruction parked at the shelf head
        // blocks the whole FIFO.
        // Schedule-error veto: a source whose counter expired while the
        // register is still pending — *without* the parent-loads freeze
        // protecting it (unsampled tree) — makes the predicted tie
        // meaningless. Sampled trees are held back by the freeze, so their
        // ties remain trustworthy and steer to the shelf as designed.
        let schedule_error = inst
            .sources()
            .any(|r| self.plt.mask(r) == 0 && self.rct.predicted_ready(r) && source_late(r));
        // A long predicted wait parks the instruction at the shelf head,
        // blocking every younger shelf instruction of the thread; keep such
        // instructions in the IQ where the wait is private.
        let long_wait = shelf_issue >= HEAD_PARK_LIMIT;
        let steer = if shelf_complete <= iq_complete && !schedule_error && !long_wait {
            Steer::Shelf
        } else {
            Steer::Iq
        };
        let (chosen_issue, chosen_complete) = match steer {
            Steer::Shelf => (shelf_issue, shelf_complete),
            Steer::Iq => (iq_issue, iq_complete),
        };

        if let Some(dest) = inst.dest {
            self.rct.set(dest, chosen_complete);
            counters.rct_ops += 1;
        }
        if steer == Steer::Shelf {
            self.shelf_next_free = (chosen_issue + 1).min(self.saturation);
        }
        self.earliest_issue = self.earliest_issue.max(chosen_issue).min(self.saturation);
        self.earliest_writeback = self
            .earliest_writeback
            .max(chosen_issue + inst.op.resolution_delay())
            .min(self.saturation);

        // Parent-loads bookkeeping.
        let mask = inst.sources().fold(0u8, |m, r| m | self.plt.mask(r));
        let column = if inst.is_load() {
            if let Some(dest) = inst.dest {
                counters.plt_ops += 1;
                self.plt.sample_load(dest, mask)
            } else {
                None
            }
        } else {
            if let Some(dest) = inst.dest {
                self.plt.propagate(dest, mask);
                counters.plt_ops += 1;
            }
            None
        };
        (steer, column)
    }

    /// One cycle passes. `actually_ready(reg)` reports whether the
    /// register's current rename mapping is really ready (the schedule-error
    /// detector: an RCT counter at zero with an unready register means a
    /// parent load is late).
    pub fn tick(&mut self, mut actually_ready: impl FnMut(ArchReg) -> bool) {
        // Only registers that depend on a sampled load can trip the
        // schedule-error detector; skip the rest of the register file.
        let mut live = self.plt.nonzero_rows();
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            live &= live - 1;
            let reg = ArchReg::from_index(i);
            let mask = self.plt.mask(reg);
            if self.rct.predicted_ready(reg) && !actually_ready(reg) {
                self.plt.mark_stalled(mask);
            }
        }
        let plt = &self.plt;
        self.rct.tick(|i| plt.frozen(i));
        self.earliest_issue = self.earliest_issue.saturating_sub(1);
        self.earliest_writeback = self.earliest_writeback.saturating_sub(1);
        self.shelf_next_free = self.shelf_next_free.saturating_sub(1);
    }

    /// A sampled load completed: free its PLT column and unfreeze its
    /// dependence tree.
    pub fn load_completed(&mut self, column: u8) {
        self.plt.load_completed(column);
    }

    /// Corrects the earliest-allowable-issue tracker against reality: the
    /// thread still has dispatched-but-unissued instructions, so a shelf
    /// instruction dispatched now cannot issue before the next cycle — the
    /// countdown must not decay to zero while elder instructions wait
    /// (paper §IV-B: predictions are corrected by "observing the actual
    /// execution schedule").
    pub fn hold_issue_floor(&mut self) {
        self.earliest_issue = self.earliest_issue.max(1);
    }
}

/// The greedy oracle of §IV-A for one thread.
///
/// Steers each instruction to whichever queue yields the earlier predicted
/// completion, using exact knowledge of producer completion times (tracked
/// from the actual schedule) and a functional cache query for load latency.
/// Ties go to the shelf. The oracle corrects its table as the real schedule
/// unfolds, as the paper's oracle does.
#[derive(Clone, Debug)]
pub struct OracleSteer {
    /// Absolute predicted ready cycle per architectural register.
    ready: [u64; NUM_ARCH_REGS],
    earliest_issue: u64,
    earliest_writeback: u64,
    /// Earliest cycle the (one-per-cycle) shelf head port is free.
    shelf_next_free: u64,
}

impl OracleSteer {
    /// Creates the oracle state.
    pub fn new() -> Self {
        OracleSteer {
            ready: [0; NUM_ARCH_REGS],
            earliest_issue: 0,
            earliest_writeback: 0,
            shelf_next_free: 0,
        }
    }

    /// Decides where to steer `inst` dispatching at cycle `now`.
    /// `load_latency` supplies the functionally-peeked cache latency.
    pub fn decide(&mut self, now: u64, inst: &DynInst, load_latency: u32) -> Steer {
        let src_ready = inst
            .sources()
            .map(|r| self.ready[r.index()])
            .max()
            .unwrap_or(0);
        let iq_issue = src_ready.max(now + 1);
        let lat = if inst.is_load() {
            load_latency
        } else {
            inst.op.latency()
        } as u64;
        let iq_complete = iq_issue + lat;
        let shelf_issue = iq_issue.max(self.earliest_issue).max(self.shelf_next_free);
        let shelf_complete = (shelf_issue + lat).max(self.earliest_writeback);

        let long_wait = shelf_issue >= now + HEAD_PARK_LIMIT as u64;
        let steer = if shelf_complete <= iq_complete && !long_wait {
            Steer::Shelf
        } else {
            Steer::Iq
        };
        let (chosen_issue, chosen_complete) = match steer {
            Steer::Shelf => (shelf_issue, shelf_complete),
            Steer::Iq => (iq_issue, iq_complete),
        };
        if let Some(dest) = inst.dest {
            self.ready[dest.index()] = chosen_complete;
        }
        if steer == Steer::Shelf {
            self.shelf_next_free = chosen_issue + 1;
        }
        self.earliest_issue = self.earliest_issue.max(chosen_issue);
        self.earliest_writeback = self
            .earliest_writeback
            .max(chosen_issue + inst.op.resolution_delay() as u64);
        steer
    }

    /// Schedule correction: the register's producer actually completed at
    /// `cycle` (paper: the oracle "additionally tracks the actual execution
    /// schedule ... to correct its representation").
    pub fn correct(&mut self, dest: ArchReg, cycle: u64) {
        self.ready[dest.index()] = cycle;
    }

    /// Schedule correction: an instruction of this thread actually issued at
    /// `cycle`; the earliest-allowable shelf issue for later instructions is
    /// at least that (the paper's oracle corrects its future-schedule
    /// representation as the simulation progresses).
    pub fn observe_issue(&mut self, cycle: u64) {
        self.earliest_issue = self.earliest_issue.max(cycle);
    }
}

impl Default for OracleSteer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_isa::MemInfo;

    fn alu(dest: u8, srcs: &[u8]) -> DynInst {
        let s: Vec<ArchReg> = srcs.iter().map(|&r| ArchReg::int(r)).collect();
        DynInst::alu(OpClass::IntAlu, ArchReg::int(dest), &s)
    }

    #[test]
    fn practical_steers_independent_chain_heads_to_shelf() {
        let mut s = PracticalSteer::new(5, 4);
        let mut c = Counters::new();
        // With an empty schedule everything predicts equal completion, and
        // ties go to the shelf.
        let (steer, _) = s.decide(&alu(8, &[0]), |_| false, &mut c);
        assert_eq!(steer, Steer::Shelf);
    }

    #[test]
    fn practical_steers_ready_inst_behind_stalled_shelf_to_iq() {
        let mut s = PracticalSteer::new(5, 4);
        let mut c = Counters::new();
        // A long-latency producer pushes the shelf's earliest-issue horizon.
        let slow = DynInst::alu(OpClass::IntDiv, ArchReg::int(8), &[ArchReg::int(0)]);
        let (st, _) = s.decide(&slow, |_| false, &mut c);
        assert_eq!(st, Steer::Shelf, "first instruction ties to shelf");
        // A dependent of the divide ties, but its predicted wait (12 cycles)
        // reaches the head-park guard: parking it would block the whole
        // shelf, so it stays in the IQ.
        let (st2, _) = s.decide(&alu(9, &[8]), |_| false, &mut c);
        assert_eq!(st2, Steer::Iq);
        // A dependent of a *short* producer still ties to the shelf.
        let mut s2 = PracticalSteer::new(5, 4);
        let (_, _) = s2.decide(&alu(8, &[0]), |_| false, &mut c);
        let (st_short, _) = s2.decide(&alu(9, &[8]), |_| false, &mut c);
        assert_eq!(st_short, Steer::Shelf);
        // An *independent* instruction behind the divide: on the shelf it
        // waits behind the horizon; in the IQ it issues immediately -> IQ.
        let (st3, _) = s.decide(&alu(10, &[0]), |_| false, &mut c);
        assert_eq!(st3, Steer::Iq);
    }

    #[test]
    fn practical_tick_decays_horizons() {
        let mut s = PracticalSteer::new(5, 4);
        let mut c = Counters::new();
        let slow = DynInst::alu(OpClass::FpDiv, ArchReg::fp(8), &[ArchReg::fp(0)]);
        s.decide(&slow, |_| false, &mut c);
        for _ in 0..40 {
            s.tick(|_| true);
        }
        // After the horizon decays, an independent instruction ties to shelf.
        let (st, _) = s.decide(&alu(10, &[0]), |_| false, &mut c);
        assert_eq!(st, Steer::Shelf);
    }

    #[test]
    fn practical_samples_load_columns() {
        let mut s = PracticalSteer::new(5, 4);
        let mut c = Counters::new();
        let ld = DynInst::load(ArchReg::int(8), ArchReg::int(0), MemInfo::new(0x100, 8));
        let (_, col) = s.decide(&ld, |_| false, &mut c);
        assert!(col.is_some());
        let mut cols = vec![col.unwrap()];
        for _ in 0..3 {
            let (_, c2) = s.decide(&ld, |_| false, &mut c);
            cols.push(c2.unwrap());
        }
        let (_, c5) = s.decide(&ld, |_| false, &mut c);
        assert!(c5.is_none(), "only 4 columns");
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 4);
        // Completion frees a column.
        s.load_completed(cols[0]);
        let (_, c6) = s.decide(&ld, |_| false, &mut c);
        assert!(c6.is_some());
    }

    #[test]
    fn oracle_prefers_iq_for_reorderable_work() {
        let mut o = OracleSteer::new();
        // A slow producer writes r8 at cycle 13.
        let slow = DynInst::alu(OpClass::IntDiv, ArchReg::int(8), &[ArchReg::int(0)]);
        let st = o.decide(0, &slow, 2);
        assert_eq!(st, Steer::Shelf);
        // Dependent work ties, but its 12-cycle predicted wait trips the
        // head-park guard -> IQ (parking would block the shelf).
        assert_eq!(o.decide(1, &alu(9, &[8]), 2), Steer::Iq);
        // Independent work would stall behind the divide on the shelf -> IQ.
        assert_eq!(o.decide(2, &alu(10, &[0]), 2), Steer::Iq);
        // Dependents of short producers still tie to the shelf.
        let mut o2 = OracleSteer::new();
        assert_eq!(o2.decide(0, &alu(8, &[0]), 2), Steer::Shelf);
        assert_eq!(o2.decide(1, &alu(9, &[8]), 2), Steer::Shelf);
    }

    #[test]
    fn oracle_uses_peeked_load_latency() {
        let mut o = OracleSteer::new();
        // A memory-bound load (peeked at 234 cycles): its consumer will not
        // issue until cycle ~235, which raises the shelf earliest-issue
        // horizon once the consumer is dispatched.
        let ld = DynInst::load(ArchReg::int(8), ArchReg::int(0), MemInfo::new(0, 8));
        assert_eq!(
            o.decide(0, &ld, 234),
            Steer::Shelf,
            "first inst ties to shelf"
        );
        // A dependent of the memory-bound load would park at the shelf head
        // for ~234 cycles: the guard keeps it in the IQ.
        assert_eq!(
            o.decide(1, &alu(9, &[8]), 234),
            Steer::Iq,
            "long wait -> IQ"
        );
        // The dependent's late predicted issue (~235) raised the
        // earliest-allowable shelf issue for everything younger, so an
        // independent op also stays in the IQ.
        assert_eq!(o.decide(2, &alu(10, &[0]), 2), Steer::Iq);
        // With an L1-hit peek instead, the dependent still ties to the
        // shelf and no far-future horizon arises (the independent op then
        // loses only by the one-per-cycle shelf port, not by hundreds of
        // cycles).
        let mut fast = OracleSteer::new();
        assert_eq!(fast.decide(0, &ld, 2), Steer::Shelf);
        assert_eq!(fast.decide(1, &alu(9, &[8]), 2), Steer::Shelf);
    }

    #[test]
    fn oracle_correction_overrides_prediction() {
        // A moderately slow producer (FpMul chain) writes r9 at ~9; a
        // consumer would normally tie to the shelf once the horizon decays.
        let mut o = OracleSteer::new();
        let fp1 = DynInst::alu(OpClass::FpMul, ArchReg::fp(8), &[ArchReg::fp(0)]);
        let fp2 = DynInst::alu(OpClass::FpMul, ArchReg::fp(9), &[ArchReg::fp(8)]);
        assert_eq!(o.decide(0, &fp1, 2), Steer::Shelf);
        assert_eq!(o.decide(1, &fp2, 2), Steer::Shelf);
        // Reality: fp9 completed much later (cycle 40). The correction must
        // flow into later decisions: a consumer at cycle 20 now predicts a
        // 20-cycle wait and the park guard keeps it in the IQ.
        o.correct(ArchReg::fp(9), 40);
        let consumer = DynInst::alu(OpClass::FpAlu, ArchReg::fp(10), &[ArchReg::fp(9)]);
        assert_eq!(o.decide(20, &consumer, 2), Steer::Iq);
        // Without the correction the same consumer ties to the shelf.
        let mut uncorrected = OracleSteer::new();
        uncorrected.decide(0, &fp1, 2);
        uncorrected.decide(1, &fp2, 2);
        assert_eq!(uncorrected.decide(20, &consumer, 2), Steer::Shelf);
    }
}
