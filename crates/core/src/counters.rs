//! Per-structure event counters.
//!
//! Every access to a major structure is counted so the energy model
//! (`shelfsim-energy`) can compute dynamic energy the way McPAT does:
//! events × per-event energy derived from structure geometry.

/// Wrapping-free counter increment for the hot accumulators (cycles,
/// commits, occupancy integrals): debug builds assert the add cannot
/// overflow; release builds saturate, so a pathological counter pegs at
/// `u64::MAX` instead of silently wrapping back through zero mid-way
/// through a long validation run.
#[inline]
pub fn acc(counter: &mut u64, by: u64) {
    debug_assert!(
        counter.checked_add(by).is_some(),
        "counter overflow: {counter} + {by}"
    );
    *counter = counter.saturating_add(by);
}

/// Dynamic event counts for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions fetched (including wrong path).
    pub fetched: u64,
    /// Synthetic wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Instructions renamed/dispatched.
    pub dispatched: u64,
    /// Instructions dispatched to the shelf.
    pub dispatched_shelf: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Instructions issued from the shelf.
    pub issued_shelf: u64,
    /// Instructions committed (architectural).
    pub committed: u64,
    /// Instructions squashed after dispatch.
    pub squashed: u64,

    /// RAT read ports exercised (source lookups + prev-mapping reads).
    pub rat_reads: u64,
    /// RAT writes (destination mapping updates, including squash restores).
    pub rat_writes: u64,
    /// Free-list pushes/pops (physical list).
    pub freelist_ops: u64,
    /// Extension free-list pushes/pops.
    pub ext_freelist_ops: u64,

    /// IQ entry writes (dispatch).
    pub iq_writes: u64,
    /// IQ wakeup CAM match operations (every broadcast compares against
    /// every live source tag; we count per-entry-compared).
    pub iq_wakeup_cam: u64,
    /// IQ selection reads (issued entries drained).
    pub iq_issues: u64,

    /// Shelf FIFO writes.
    pub shelf_writes: u64,
    /// Shelf FIFO head reads (issue).
    pub shelf_reads: u64,

    /// ROB writes (dispatch).
    pub rob_writes: u64,
    /// ROB reads (commit/squash walks).
    pub rob_reads: u64,

    /// Physical register file reads.
    pub prf_reads: u64,
    /// Physical register file writes.
    pub prf_writes: u64,

    /// LQ allocations.
    pub lq_writes: u64,
    /// SQ allocations.
    pub sq_writes: u64,
    /// Associative LSQ searches (forwarding and violation scans; counted
    /// per-entry-compared, the CAM energy driver).
    pub lsq_searches: u64,

    /// Branch predictor lookups.
    pub bpred_lookups: u64,
    /// Branch mispredictions (direction or target).
    pub branch_mispredicts: u64,
    /// Memory-order violations (flush + replay).
    pub memory_violations: u64,
    /// Loads whose issue was blocked by a store-set dependence.
    pub store_set_stalls: u64,
    /// Issue attempts rejected because all data MSHRs were busy.
    pub mshr_stalls: u64,

    /// Functional-unit operations by kind: [int_alu, int_muldiv, fp, mem].
    pub fu_ops: [u64; 4],

    /// Ready-cycle-table updates (practical steering).
    pub rct_ops: u64,
    /// Parent-loads-table updates (practical steering).
    pub plt_ops: u64,

    /// Dispatch stalls by cause.
    pub stalls: StallCounters,

    /// Shelf-head stall cycles by first failing condition (diagnostic):
    /// [order barrier, SSR, RAW sources, WAW previous writer,
    /// structural/store-set].
    pub shelf_head_stalls: [u64; 5],

    /// ROB-head commit stalls by cause (diagnostic): [execution incomplete,
    /// waiting for elder shelf writebacks, store buffer full].
    pub commit_stalls: [u64; 3],

    /// Occupancy integrals (entry-cycles): divide by `cycles` for the mean
    /// occupancy of each structure. Order: [ROB, IQ, LQ, SQ, shelf,
    /// rename registers in use].
    pub occupancy: [u64; 6],
}

/// Dispatch-stage stall causes (one count per instruction-slot-cycle lost).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallCounters {
    /// ROB partition full.
    pub rob_full: u64,
    /// IQ full.
    pub iq_full: u64,
    /// LQ partition full.
    pub lq_full: u64,
    /// SQ partition full.
    pub sq_full: u64,
    /// Shelf partition full (entries).
    pub shelf_full: u64,
    /// Shelf virtual index space exhausted.
    pub shelf_index_full: u64,
    /// Physical free list empty.
    pub no_phys_reg: u64,
    /// Extension free list empty.
    pub no_ext_tag: u64,
    /// Memory barrier serialization.
    pub barrier: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Committed instructions per cycle across all threads.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of dispatched instructions steered to the shelf.
    pub fn shelf_dispatch_fraction(&self) -> f64 {
        if self.dispatched == 0 {
            0.0
        } else {
            self.dispatched_shelf as f64 / self.dispatched as f64
        }
    }

    /// Mean occupancy of a structure over the measured window
    /// (see [`Counters::occupancy`] for the index order).
    pub fn mean_occupancy(&self, index: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy[index] as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let c = Counters::new();
        assert_eq!(c.cycles, 0);
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.shelf_dispatch_fraction(), 0.0);
    }

    #[test]
    fn acc_adds_normally_below_the_limit() {
        let mut c = 0u64;
        for _ in 0..1000 {
            acc(&mut c, 3);
        }
        assert_eq!(c, 3000);
        // Near-max but not overflowing: still an ordinary add.
        let mut near = u64::MAX - 10;
        acc(&mut near, 10);
        assert_eq!(near, u64::MAX);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "counter overflow")]
    fn acc_overflow_is_caught_in_debug_builds() {
        let mut c = u64::MAX;
        acc(&mut c, 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn acc_saturates_in_release_builds() {
        let mut c = u64::MAX - 1;
        acc(&mut c, 5);
        assert_eq!(c, u64::MAX);
    }

    #[test]
    fn derived_ratios() {
        let c = Counters {
            cycles: 100,
            committed: 250,
            dispatched: 300,
            dispatched_shelf: 150,
            ..Default::default()
        };
        assert!((c.ipc() - 2.5).abs() < 1e-12);
        assert!((c.shelf_dispatch_fraction() - 0.5).abs() < 1e-12);
    }
}
