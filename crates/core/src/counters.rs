//! Per-structure event counters.
//!
//! Every access to a major structure is counted so the energy model
//! (`shelfsim-energy`) can compute dynamic energy the way McPAT does:
//! events × per-event energy derived from structure geometry.

/// Wrapping-free counter increment for the hot accumulators (cycles,
/// commits, occupancy integrals): debug builds assert the add cannot
/// overflow; release builds saturate, so a pathological counter pegs at
/// `u64::MAX` instead of silently wrapping back through zero mid-way
/// through a long validation run.
#[inline]
pub fn acc(counter: &mut u64, by: u64) {
    debug_assert!(
        counter.checked_add(by).is_some(),
        "counter overflow: {counter} + {by}"
    );
    *counter = counter.saturating_add(by);
}

/// Scaled accumulate for the cycle-skip fast-forward path:
/// `counter += delta * k` with the same overflow discipline as [`acc`].
/// Skips can jump thousands of cycles at once, so the product itself is
/// checked in debug builds and saturated in release builds.
#[inline]
pub fn acc_scaled(counter: &mut u64, delta: u64, k: u64) {
    debug_assert!(
        delta
            .checked_mul(k)
            .and_then(|p| counter.checked_add(p))
            .is_some(),
        "counter overflow: {counter} + {delta} * {k}"
    );
    *counter = counter.saturating_add(delta.saturating_mul(k));
}

/// The scalar `u64` fields of [`Counters`], listed once so
/// [`Counters::diff`] and [`Counters::add_scaled`] cannot silently fall out
/// of sync with the struct definition (an exhaustive destructuring
/// generated from this list makes a missing field a compile error).
macro_rules! with_counter_fields {
    ($m:ident) => {
        $m!(
            cycles,
            fetched,
            wrong_path_fetched,
            dispatched,
            dispatched_shelf,
            issued,
            issued_shelf,
            committed,
            squashed,
            rat_reads,
            rat_writes,
            freelist_ops,
            ext_freelist_ops,
            iq_writes,
            iq_wakeup_cam,
            iq_issues,
            shelf_writes,
            shelf_reads,
            rob_writes,
            rob_reads,
            prf_reads,
            prf_writes,
            lq_writes,
            sq_writes,
            lsq_searches,
            bpred_lookups,
            branch_mispredicts,
            memory_violations,
            store_set_stalls,
            mshr_stalls,
            rct_ops,
            plt_ops
        );
    };
}

/// The fields of [`StallCounters`], listed once (same rationale).
macro_rules! with_stall_fields {
    ($m:ident) => {
        $m!(
            rob_full,
            iq_full,
            lq_full,
            sq_full,
            shelf_full,
            shelf_index_full,
            no_phys_reg,
            no_ext_tag,
            barrier
        );
    };
}

/// Dynamic event counts for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions fetched (including wrong path).
    pub fetched: u64,
    /// Synthetic wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Instructions renamed/dispatched.
    pub dispatched: u64,
    /// Instructions dispatched to the shelf.
    pub dispatched_shelf: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Instructions issued from the shelf.
    pub issued_shelf: u64,
    /// Instructions committed (architectural).
    pub committed: u64,
    /// Instructions squashed after dispatch.
    pub squashed: u64,

    /// RAT read ports exercised (source lookups + prev-mapping reads).
    pub rat_reads: u64,
    /// RAT writes (destination mapping updates, including squash restores).
    pub rat_writes: u64,
    /// Free-list pushes/pops (physical list).
    pub freelist_ops: u64,
    /// Extension free-list pushes/pops.
    pub ext_freelist_ops: u64,

    /// IQ entry writes (dispatch).
    pub iq_writes: u64,
    /// IQ wakeup CAM match operations (every broadcast compares against
    /// every live source tag; we count per-entry-compared).
    pub iq_wakeup_cam: u64,
    /// IQ selection reads (issued entries drained).
    pub iq_issues: u64,

    /// Shelf FIFO writes.
    pub shelf_writes: u64,
    /// Shelf FIFO head reads (issue).
    pub shelf_reads: u64,

    /// ROB writes (dispatch).
    pub rob_writes: u64,
    /// ROB reads (commit/squash walks).
    pub rob_reads: u64,

    /// Physical register file reads.
    pub prf_reads: u64,
    /// Physical register file writes.
    pub prf_writes: u64,

    /// LQ allocations.
    pub lq_writes: u64,
    /// SQ allocations.
    pub sq_writes: u64,
    /// Associative LSQ searches (forwarding and violation scans; counted
    /// per-entry-compared, the CAM energy driver).
    pub lsq_searches: u64,

    /// Branch predictor lookups.
    pub bpred_lookups: u64,
    /// Branch mispredictions (direction or target).
    pub branch_mispredicts: u64,
    /// Memory-order violations (flush + replay).
    pub memory_violations: u64,
    /// Loads whose issue was blocked by a store-set dependence.
    pub store_set_stalls: u64,
    /// Issue attempts rejected because all data MSHRs were busy.
    pub mshr_stalls: u64,

    /// Functional-unit operations by kind: [int_alu, int_muldiv, fp, mem].
    pub fu_ops: [u64; 4],

    /// Ready-cycle-table updates (practical steering).
    pub rct_ops: u64,
    /// Parent-loads-table updates (practical steering).
    pub plt_ops: u64,

    /// Dispatch stalls by cause.
    pub stalls: StallCounters,

    /// Shelf-head stall cycles by first failing condition (diagnostic):
    /// [order barrier, SSR, RAW sources, WAW previous writer,
    /// structural/store-set].
    pub shelf_head_stalls: [u64; 5],

    /// ROB-head commit stalls by cause (diagnostic): [execution incomplete,
    /// waiting for elder shelf writebacks, store buffer full].
    pub commit_stalls: [u64; 3],

    /// Occupancy integrals (entry-cycles): divide by `cycles` for the mean
    /// occupancy of each structure. Order: [ROB, IQ, LQ, SQ, shelf,
    /// rename registers in use].
    pub occupancy: [u64; 6],
}

/// Dispatch-stage stall causes (one count per instruction-slot-cycle lost).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallCounters {
    /// ROB partition full.
    pub rob_full: u64,
    /// IQ full.
    pub iq_full: u64,
    /// LQ partition full.
    pub lq_full: u64,
    /// SQ partition full.
    pub sq_full: u64,
    /// Shelf partition full (entries).
    pub shelf_full: u64,
    /// Shelf virtual index space exhausted.
    pub shelf_index_full: u64,
    /// Physical free list empty.
    pub no_phys_reg: u64,
    /// Extension free list empty.
    pub no_ext_tag: u64,
    /// Memory barrier serialization.
    pub barrier: u64,
}

/// Dispatch-blocking causes rooted purely in a thread's *own* partitioned
/// resources. The partial-progress skip engine records one of these on a
/// park certificate: unlike shared causes (IQ occupancy, free lists), a
/// local full condition cannot be released by another thread's activity,
/// so the recorded cause stays the first-failing check for as long as the
/// thread is parked.
// The `Full` postfix is the information: each variant names *which*
// partitioned structure is full, mirroring the `StallCause` vocabulary.
#[allow(clippy::enum_variant_names)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LocalStall {
    /// ROB partition full.
    RobFull,
    /// LQ partition full.
    LqFull,
    /// SQ partition full.
    SqFull,
    /// Shelf partition full (entries).
    ShelfFull,
    /// Shelf virtual index space exhausted.
    ShelfIndexFull,
}

impl LocalStall {
    /// Bumps the matching [`StallCounters`] field — the park-certificate
    /// replay of the real dispatch stage's per-cycle charge.
    pub(crate) fn bump(self, s: &mut StallCounters) {
        match self {
            LocalStall::RobFull => s.rob_full += 1,
            LocalStall::LqFull => s.lq_full += 1,
            LocalStall::SqFull => s.sq_full += 1,
            LocalStall::ShelfFull => s.shelf_full += 1,
            LocalStall::ShelfIndexFull => s.shelf_index_full += 1,
        }
    }
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Committed instructions per cycle across all threads.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of dispatched instructions steered to the shelf.
    pub fn shelf_dispatch_fraction(&self) -> f64 {
        if self.dispatched == 0 {
            0.0
        } else {
            self.dispatched_shelf as f64 / self.dispatched as f64
        }
    }

    /// Mean occupancy of a structure over the measured window
    /// (see [`Counters::occupancy`] for the index order).
    pub fn mean_occupancy(&self, index: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy[index] as f64 / self.cycles as f64
        }
    }

    /// Field-by-field difference `self - before`.
    ///
    /// `before` must be an earlier snapshot of the same counter set (every
    /// field monotonically non-decreasing), which the skip engine's
    /// probe-and-diff protocol guarantees by construction.
    pub fn diff(&self, before: &Counters) -> Counters {
        let mut out = Counters::default();
        macro_rules! d {
            ($($f:ident),*) => { $( out.$f = self.$f - before.$f; )* };
        }
        with_counter_fields!(d);
        macro_rules! ds {
            ($($f:ident),*) => { $( out.stalls.$f = self.stalls.$f - before.stalls.$f; )* };
        }
        with_stall_fields!(ds);
        for i in 0..self.fu_ops.len() {
            out.fu_ops[i] = self.fu_ops[i] - before.fu_ops[i];
        }
        for i in 0..self.shelf_head_stalls.len() {
            out.shelf_head_stalls[i] = self.shelf_head_stalls[i] - before.shelf_head_stalls[i];
        }
        for i in 0..self.commit_stalls.len() {
            out.commit_stalls[i] = self.commit_stalls[i] - before.commit_stalls[i];
        }
        for i in 0..self.occupancy.len() {
            out.occupancy[i] = self.occupancy[i] - before.occupancy[i];
        }
        out
    }

    /// Accumulates `delta * k` into every field, with [`acc_scaled`]'s
    /// overflow discipline. This is how a skipped span of `k` identical idle
    /// cycles is folded into the run counters without visiting each cycle.
    pub fn add_scaled(&mut self, delta: &Counters, k: u64) {
        macro_rules! a {
            ($($f:ident),*) => { $( acc_scaled(&mut self.$f, delta.$f, k); )* };
        }
        with_counter_fields!(a);
        macro_rules! asx {
            ($($f:ident),*) => { $( acc_scaled(&mut self.stalls.$f, delta.stalls.$f, k); )* };
        }
        with_stall_fields!(asx);
        for i in 0..self.fu_ops.len() {
            acc_scaled(&mut self.fu_ops[i], delta.fu_ops[i], k);
        }
        for i in 0..self.shelf_head_stalls.len() {
            acc_scaled(
                &mut self.shelf_head_stalls[i],
                delta.shelf_head_stalls[i],
                k,
            );
        }
        for i in 0..self.commit_stalls.len() {
            acc_scaled(&mut self.commit_stalls[i], delta.commit_stalls[i], k);
        }
        for i in 0..self.occupancy.len() {
            acc_scaled(&mut self.occupancy[i], delta.occupancy[i], k);
        }
    }
}

/// Compile-time guard: destructures [`Counters`] without `..` so a new
/// struct field that is missing from `with_counter_fields!` fails the
/// build here instead of silently escaping `diff`/`add_scaled`.
macro_rules! exhaustiveness_guard {
    ($($f:ident),*) => {
        #[allow(dead_code, unused_variables)]
        fn _counter_field_list_is_exhaustive(c: &Counters) {
            let Counters {
                $($f,)*
                fu_ops,
                stalls,
                shelf_head_stalls,
                commit_stalls,
                occupancy,
            } = c;
        }
    };
}
with_counter_fields!(exhaustiveness_guard);

/// Same guard for [`StallCounters`] and `with_stall_fields!`.
macro_rules! stall_exhaustiveness_guard {
    ($($f:ident),*) => {
        #[allow(dead_code, unused_variables)]
        fn _stall_field_list_is_exhaustive(s: &StallCounters) {
            let StallCounters { $($f,)* } = s;
        }
    };
}
with_stall_fields!(stall_exhaustiveness_guard);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let c = Counters::new();
        assert_eq!(c.cycles, 0);
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.shelf_dispatch_fraction(), 0.0);
    }

    #[test]
    fn acc_adds_normally_below_the_limit() {
        let mut c = 0u64;
        for _ in 0..1000 {
            acc(&mut c, 3);
        }
        assert_eq!(c, 3000);
        // Near-max but not overflowing: still an ordinary add.
        let mut near = u64::MAX - 10;
        acc(&mut near, 10);
        assert_eq!(near, u64::MAX);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "counter overflow")]
    fn acc_overflow_is_caught_in_debug_builds() {
        let mut c = u64::MAX;
        acc(&mut c, 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn acc_saturates_in_release_builds() {
        let mut c = u64::MAX - 1;
        acc(&mut c, 5);
        assert_eq!(c, u64::MAX);
    }

    #[test]
    fn diff_and_add_scaled_round_trip() {
        let before = Counters {
            cycles: 100,
            committed: 40,
            lsq_searches: 7,
            occupancy: [1, 2, 3, 4, 5, 6],
            fu_ops: [10, 0, 0, 2],
            ..Default::default()
        };
        let mut after = before.clone();
        after.cycles += 1;
        after.lsq_searches += 3;
        after.stalls.rob_full += 2;
        after.occupancy[4] += 9;
        after.shelf_head_stalls[2] += 1;
        after.commit_stalls[0] += 1;
        let delta = after.diff(&before);
        assert_eq!(delta.cycles, 1);
        assert_eq!(delta.lsq_searches, 3);
        assert_eq!(delta.stalls.rob_full, 2);
        assert_eq!(delta.occupancy[4], 9);
        assert_eq!(delta.committed, 0);

        // Applying the delta k times by scaling matches k per-cycle adds.
        let mut scaled = after.clone();
        scaled.add_scaled(&delta, 5);
        let mut stepped = after.clone();
        for _ in 0..5 {
            let next = stepped.clone();
            stepped.add_scaled(&delta, 1);
            assert_eq!(stepped.diff(&next), delta);
        }
        assert_eq!(scaled, stepped);
    }

    #[test]
    fn acc_scaled_adds_normally_below_the_limit() {
        let mut c = 10u64;
        acc_scaled(&mut c, 3, 1000);
        assert_eq!(c, 3010);
        acc_scaled(&mut c, 0, u64::MAX);
        assert_eq!(c, 3010);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "counter overflow")]
    fn acc_scaled_overflow_is_caught_in_debug_builds() {
        let mut c = 1u64;
        acc_scaled(&mut c, u64::MAX / 2, 3);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn acc_scaled_saturates_in_release_builds() {
        let mut c = 1u64;
        acc_scaled(&mut c, u64::MAX / 2, 3);
        assert_eq!(c, u64::MAX);
    }

    #[test]
    fn derived_ratios() {
        let c = Counters {
            cycles: 100,
            committed: 250,
            dispatched: 300,
            dispatched_shelf: 150,
            ..Default::default()
        };
        assert!((c.ipc() - 2.5).abs() < 1e-12);
        assert!((c.shelf_dispatch_fraction() - 0.5).abs() < 1e-12);
    }
}
