//! Simulation driver: builds workloads, warms the core, and measures a
//! fixed-cycle sampling window (the stand-in for the paper's SimPoint
//! methodology — deterministic warm-up instead of fast-forwarding).

use crate::config::CoreConfig;
use crate::counters::Counters;
use crate::pipeline::{Core, ThreadOccupancy};
use shelfsim_mem::CacheStats;
use shelfsim_stats::WeightedCdf;
use shelfsim_workload::{suite, BenchmarkProfile, Program, TraceSource};

/// Instructions of functional (atomic-mode) warm-up per thread applied when
/// a [`Simulation`] is built: trains branch predictors and warms caches
/// before the timed run, standing in for the paper's 100M-instruction
/// warm-up. Override with [`Simulation::with_functional_warmup`].
pub const DEFAULT_FUNCTIONAL_WARMUP: u64 = 100_000;

/// Error returned when a benchmark name is not in the suite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownBenchmark(pub String);

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark `{}`", self.0)
    }
}

impl std::error::Error for UnknownBenchmark {}

/// How a measured run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// A fixed-cycle measurement window ran to its end ([`Simulation::run`]).
    FixedWindow,
    /// Every thread reached its per-thread commit target
    /// ([`Simulation::run_until_committed`]).
    CommitTarget,
    /// `max_cycles` expired before every thread reached its commit target:
    /// the results cover only the measured prefix and equal-work
    /// comparisons against them are suspect.
    MaxCyclesExpired,
}

impl Completion {
    /// True when the run ended early and the results are partial.
    pub fn is_truncated(&self) -> bool {
        matches!(self, Completion::MaxCyclesExpired)
    }

    /// Stable lowercase tag (journal/JSON output).
    pub fn as_str(&self) -> &'static str {
        match self {
            Completion::FixedWindow => "fixed-window",
            Completion::CommitTarget => "commit-target",
            Completion::MaxCyclesExpired => "max-cycles-expired",
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Reproducibility metadata stamped into every [`RunResult`]: enough to
/// rebuild the exact simulation that produced it (the benchmark mix, the
/// workload seed, and a fingerprint of the full configuration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Workload seed passed to [`Simulation::new`].
    pub seed: u64,
    /// Benchmark name of each thread, in thread order.
    pub benchmarks: Vec<String>,
    /// [`CoreConfig::stable_hash`] of the configuration.
    pub config_hash: u64,
}

/// Forward-progress watchdog: if no thread commits an instruction for
/// `window` consecutive driver cycles, the run is aborted with a
/// [`SimError::Deadlock`] carrying an occupancy snapshot, instead of
/// spinning until `max_cycles`/`measure_cycles` burn out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watchdog {
    /// Abort after this many consecutive cycles without a commit.
    pub window: u64,
}

impl Watchdog {
    /// A watchdog with the given no-commit window (cycles).
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "watchdog window must be nonzero");
        Watchdog { window }
    }
}

/// Diagnosis attached to a watchdog abort: where the pipeline was wedged.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// Driver cycle (since construction) at which the watchdog fired.
    pub cycle: u64,
    /// The configured no-commit window.
    pub window: u64,
    /// Last driver cycle on which any thread committed.
    pub last_progress_cycle: u64,
    /// Shared-IQ occupancy at abort.
    pub iq: usize,
    /// Per-thread structure occupancy at abort.
    pub threads: Vec<ThreadOccupancy>,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no thread committed for {} cycles (cycle {}, last progress at {}); iq={}",
            self.window, self.cycle, self.last_progress_cycle, self.iq
        )?;
        for t in &self.threads {
            write!(
                f,
                "; t{}: committed={} rob={} lq={} sq={} shelf={} window={} frontend={}",
                t.thread, t.committed, t.rob, t.lq, t.sq, t.shelf, t.window, t.frontend
            )?;
        }
        Ok(())
    }
}

/// Non-panicking failure of a simulation run (the `try_` API surface).
#[derive(Clone, Debug)]
pub enum SimError {
    /// The forward-progress watchdog fired: the pipeline stopped committing.
    Deadlock(DeadlockReport),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(f, "deadlock: {d}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-thread results over the measured window.
#[derive(Clone, Debug)]
pub struct ThreadResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Instructions committed during the measured window.
    pub committed: u64,
    /// Cycles per committed instruction over the measured window.
    pub cpi: f64,
    /// Fraction of committed instructions classified in-sequence.
    pub in_sequence_fraction: f64,
    /// Mis-steer rate vs. the shadow oracle (practical steering runs).
    pub missteer_rate: f64,
    /// Branch mispredict ratio over the whole run.
    pub branch_mispredict_ratio: f64,
    /// Commit-order series lengths of in-sequence instructions (whole run).
    pub in_sequence_series: WeightedCdf,
    /// Commit-order series lengths of reordered instructions (whole run).
    pub reordered_series: WeightedCdf,
}

/// Results of one measured run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Measured cycles.
    pub cycles: u64,
    /// Per-thread results.
    pub threads: Vec<ThreadResult>,
    /// Event counters over the measured window (energy-model input).
    pub counters: Counters,
    /// L1I counters over the measured window.
    pub l1i: CacheStats,
    /// L1D counters over the measured window.
    pub l1d: CacheStats,
    /// L2 counters over the measured window.
    pub l2: CacheStats,
    /// SSR-safety self-check (must be 0; see `Core::late_shelf_commits`).
    pub late_shelf_commits: u64,
    /// How the measurement ended (whether a commit target was reached or
    /// `max_cycles` truncated the run).
    pub completion: Completion,
    /// Reproducibility metadata (seed, benchmarks, config fingerprint).
    pub meta: RunMeta,
}

impl RunResult {
    /// Per-thread CPIs in thread order.
    pub fn cpis(&self) -> Vec<f64> {
        self.threads.iter().map(|t| t.cpi).collect()
    }

    /// Aggregate committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        let committed: u64 = self.threads.iter().map(|t| t.committed).sum();
        if self.cycles == 0 {
            0.0
        } else {
            committed as f64 / self.cycles as f64
        }
    }

    /// Mean in-sequence fraction across threads.
    pub fn mean_in_sequence_fraction(&self) -> f64 {
        let n = self.threads.len() as f64;
        self.threads
            .iter()
            .map(|t| t.in_sequence_fraction)
            .sum::<f64>()
            / n
    }
}

fn cache_delta(now: &CacheStats, then: &CacheStats) -> CacheStats {
    CacheStats {
        accesses: now.accesses - then.accesses,
        hits: now.hits - then.hits,
        writebacks: now.writebacks - then.writebacks,
    }
}

/// A configured simulation of one core and its workload mix.
pub struct Simulation {
    core: Core,
    names: Vec<String>,
    meta: RunMeta,
    /// Driver cycles issued so far (warm-up + measurement, across calls).
    driven: u64,
    /// Injected stall windows `(start, duration)` in driver cycles: while
    /// inside a window the driver burns the cycle without ticking the core,
    /// so no thread makes progress. Fault-injection hook for testing the
    /// watchdog and campaign harness (see [`Simulation::inject_stall`]).
    stalls: Vec<(u64, u64)>,
}

/// The program-build seed [`Simulation::new`] derives for hardware thread
/// `thread` from the run seed. Exposed so static analysis (campaign
/// pre-flight) can reconstruct the *exact* per-thread programs a run will
/// execute without building the simulation.
pub fn thread_program_seed(seed: u64, thread: usize) -> u64 {
    seed ^ (thread as u64) << 8
}

/// Internal watchdog bookkeeping for the `try_` run loops.
struct WatchdogState {
    window: u64,
    last_total: u64,
    last_progress_cycle: u64,
}

impl Simulation {
    /// Builds a simulation from benchmark profiles (one per thread).
    ///
    /// # Panics
    ///
    /// Panics if the profile count does not match `cfg.threads`.
    pub fn new(cfg: CoreConfig, profiles: &[&BenchmarkProfile], seed: u64) -> Self {
        assert_eq!(profiles.len(), cfg.threads, "one benchmark per thread");
        let programs: Vec<(String, Program)> = profiles
            .iter()
            .enumerate()
            .map(|(t, p)| {
                (
                    p.name.to_owned(),
                    p.build_program(thread_program_seed(seed, t)),
                )
            })
            .collect();
        Self::from_programs(cfg, programs, seed)
    }

    /// Builds a simulation from pre-built programs, one `(benchmark name,
    /// program)` pair per thread. Callers that run many simulations over a
    /// repeating workload set (the campaign worker pool) memoize
    /// `build_program` results and feed them in here, skipping the
    /// per-run program-generation cost. The programs must be exactly what
    /// `profile.build_program(thread_program_seed(seed, t))` would produce
    /// for the paired names, or results stop matching their run keys.
    ///
    /// # Panics
    ///
    /// Panics if the program count does not match `cfg.threads`.
    pub fn from_programs(cfg: CoreConfig, programs: Vec<(String, Program)>, seed: u64) -> Self {
        assert_eq!(programs.len(), cfg.threads, "one program per thread");
        let names: Vec<String> = programs.iter().map(|(n, _)| n.clone()).collect();
        let meta = RunMeta {
            seed,
            benchmarks: names.clone(),
            config_hash: cfg.stable_hash(),
        };
        let traces: Vec<TraceSource> = programs
            .into_iter()
            .enumerate()
            .map(|(t, (_, p))| TraceSource::new(p, t))
            .collect();
        let mut core = Core::new(cfg, traces);
        core.warm_caches();
        core.warm_functional(DEFAULT_FUNCTIONAL_WARMUP);
        Simulation {
            core,
            names,
            meta,
            driven: 0,
            stalls: Vec::new(),
        }
    }

    /// Builds a simulation from benchmark names.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownBenchmark`] for names not in the suite.
    pub fn from_names(
        cfg: CoreConfig,
        names: &[&str],
        seed: u64,
    ) -> Result<Self, UnknownBenchmark> {
        let profiles: Vec<&BenchmarkProfile> = names
            .iter()
            .map(|&n| suite::by_name(n).ok_or_else(|| UnknownBenchmark(n.to_owned())))
            .collect::<Result<_, _>>()?;
        Ok(Self::new(cfg, &profiles, seed))
    }

    /// Access to the underlying core (e.g., for invariant checks in tests).
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Reproducibility metadata for this simulation (also stamped into
    /// every [`RunResult`] it produces).
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// Advances the simulation one cycle (debugging and fine-grained tests).
    pub fn step(&mut self) {
        self.advance();
    }

    /// Injects an artificial stall: for `duration` driver cycles starting at
    /// driver cycle `at` (counted from construction, across warm-up and
    /// measurement), the driver burns cycles without ticking the core, so no
    /// thread commits. Deterministic fault-injection hook: a stall shorter
    /// than a watchdog window models a slow-but-recovering run; a stall of
    /// `u64::MAX` models a livelock the watchdog must abort.
    pub fn inject_stall(&mut self, at: u64, duration: u64) {
        self.stalls.push((at, duration));
    }

    /// One driver cycle: either a real core tick or a burned (stalled)
    /// cycle inside an injected stall window.
    fn advance(&mut self) {
        let c = self.driven;
        self.driven += 1;
        if self.stalls.iter().any(|&(s, d)| c >= s && c - s < d) {
            return;
        }
        self.core.tick();
    }

    /// Advances up to `budget` driver cycles as one bounded block: cycles
    /// inside an injected stall window burn without ticking the core, and
    /// clean stretches are handed to [`Core::tick_bounded`], which may
    /// fast-forward provably idle spans. Blocks never straddle a stall
    /// window boundary, so stall semantics are bit-identical to the
    /// cycle-by-cycle driver. Returns the cycles advanced (at least 1).
    fn advance_bounded(&mut self, budget: u64) -> u64 {
        debug_assert!(budget > 0);
        let c = self.driven;
        // Inside a stall window: burn up to its end (the farthest end among
        // covering windows — every cycle in that range is stalled).
        if let Some(end) = self
            .stalls
            .iter()
            .filter(|&&(s, d)| c >= s && c - s < d)
            .map(|&(s, d)| s.saturating_add(d))
            .max()
        {
            let burn = budget.min(end - c);
            self.driven += burn;
            return burn;
        }
        // Clean: run the core until the next stall window opens.
        let until = self
            .stalls
            .iter()
            .map(|&(s, _)| s)
            .filter(|&s| s > c)
            .min()
            .unwrap_or(u64::MAX);
        let run = budget.min(until - c);
        self.driven += run;
        self.core.tick_bounded(run);
        run
    }

    /// Drives exactly `cycles` driver cycles in bounded blocks, checking
    /// the watchdog at block boundaries. Blocks are capped at the watchdog
    /// deadline (`last_progress_cycle + window`), so a run that stops
    /// retiring instructions is diagnosed at the same driver cycle as under
    /// the cycle-by-cycle driver — even when the skip engine is jumping the
    /// core over MSHR-fill deadlines inside a block.
    fn drive(&mut self, cycles: u64, wd: &mut Option<WatchdogState>) -> Result<(), SimError> {
        let end = self.driven + cycles;
        while self.driven < end {
            let mut budget = end - self.driven;
            if let Some(state) = wd.as_ref() {
                let deadline = state.last_progress_cycle + state.window;
                budget = budget.min(deadline.saturating_sub(self.driven)).max(1);
            }
            self.advance_bounded(budget);
            if let Some(state) = wd.as_mut() {
                self.watchdog_check(state)?;
            }
        }
        Ok(())
    }

    /// Total instructions committed across all threads (whole run).
    fn total_committed(&self) -> u64 {
        (0..self.names.len()).map(|t| self.core.committed(t)).sum()
    }

    fn watchdog_state(&self, watchdog: Option<Watchdog>) -> Option<WatchdogState> {
        watchdog.map(|w| WatchdogState {
            window: w.window,
            last_total: self.total_committed(),
            last_progress_cycle: self.driven,
        })
    }

    /// Updates `state` after one driver cycle; returns the deadlock report
    /// if the no-commit window has been exceeded.
    fn watchdog_check(&self, state: &mut WatchdogState) -> Result<(), SimError> {
        let total = self.total_committed();
        if total != state.last_total {
            state.last_total = total;
            state.last_progress_cycle = self.driven;
        } else if self.driven - state.last_progress_cycle >= state.window {
            return Err(SimError::Deadlock(DeadlockReport {
                cycle: self.driven,
                window: state.window,
                last_progress_cycle: state.last_progress_cycle,
                iq: self.core.iq_len(),
                threads: self.core.thread_occupancy(),
            }));
        }
        Ok(())
    }

    /// Enables the per-instruction commit log (see
    /// [`crate::pipeline::CommitRecord`]).
    pub fn enable_commit_log(&mut self, capacity: usize) {
        self.core.enable_commit_log(capacity);
    }

    /// Enables the commit observer (see [`Core::enable_commit_observer`]):
    /// every correct-path commit is queued as a
    /// [`crate::pipeline::CommitEvent`] until drained.
    pub fn enable_commit_observer(&mut self) {
        self.core.enable_commit_observer();
    }

    /// Drains queued commit-observer events into `out` (see
    /// [`Core::drain_commit_events`]).
    pub fn drain_commit_events(&mut self, out: &mut Vec<crate::pipeline::CommitEvent>) {
        self.core.drain_commit_events(out);
    }

    /// Enables pipeline tracing: lifecycle records, occupancy samples (one
    /// every `sample_every` cycles), and per-thread stall attribution, each
    /// bounded by `window` (see [`shelfsim_trace::Tracer`]). The tracer is
    /// reset at the warm-up/measurement boundary of [`Simulation::run`] and
    /// [`Simulation::run_until_committed`], so exports cover the measured
    /// region only.
    pub fn enable_tracer(&mut self, window: usize, sample_every: u64) {
        self.core.enable_tracer(window, sample_every);
    }

    /// The pipeline tracer, if enabled.
    pub fn tracer(&self) -> Option<&shelfsim_trace::Tracer> {
        self.core.tracer()
    }

    /// Runtime toggle for event-driven cycle skipping in the fixed-window
    /// drivers (see [`Core::set_cycle_skipping`]). On by default; results
    /// are bit-identical either way.
    pub fn set_cycle_skipping(&mut self, on: bool) {
        self.core.set_cycle_skipping(on);
    }

    /// Cycle-skip accounting for this simulation's core.
    pub fn skip_stats(&self) -> &crate::skip::SkipStats {
        self.core.skip_stats()
    }

    /// Alternative measurement: after `warmup_cycles`, runs until every
    /// thread has committed at least `insts_per_thread` instructions (or
    /// `max_cycles` measured cycles elapse) and returns the results over the
    /// measured region. Useful for equal-work comparisons across designs.
    ///
    /// The result's [`RunResult::completion`] records whether the commit
    /// target was actually reached ([`Completion::CommitTarget`]) or
    /// `max_cycles` expired first ([`Completion::MaxCyclesExpired`]) — the
    /// latter used to be silent truncation.
    pub fn run_until_committed(
        &mut self,
        warmup_cycles: u64,
        insts_per_thread: u64,
        max_cycles: u64,
    ) -> RunResult {
        self.try_run_until_committed(warmup_cycles, insts_per_thread, max_cycles, None)
            .expect("infallible without a watchdog")
    }

    /// Non-panicking variant of [`Simulation::run_until_committed`] with an
    /// optional forward-progress [`Watchdog`] (active during warm-up and
    /// measurement).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the watchdog window elapses with no
    /// thread committing.
    pub fn try_run_until_committed(
        &mut self,
        warmup_cycles: u64,
        insts_per_thread: u64,
        max_cycles: u64,
        watchdog: Option<Watchdog>,
    ) -> Result<RunResult, SimError> {
        let mut wd = self.watchdog_state(watchdog);
        self.drive(warmup_cycles, &mut wd)?;
        let committed0: Vec<u64> = (0..self.names.len())
            .map(|t| self.core.committed(t))
            .collect();
        let class0: Vec<(u64, u64)> = (0..self.names.len())
            .map(|t| {
                let c = self.core.classifier(t);
                (c.committed_in_sequence, c.committed_reordered)
            })
            .collect();
        let bpred0: Vec<(u64, u64)> = (0..self.names.len())
            .map(|t| self.core.bpred_counts(t))
            .collect();
        let l1i0 = *self.core.hierarchy().l1i_stats();
        let l1d0 = *self.core.hierarchy().l1d_stats();
        let l20 = *self.core.hierarchy().l2_stats();
        self.core.counters = Counters::new();
        if let Some(tracer) = self.core.tracer_mut() {
            tracer.reset();
        }

        let mut measured = 0u64;
        let mut completion = Completion::MaxCyclesExpired;
        // Cycle-by-cycle on purpose: the commit target must be detected at
        // the exact crossing cycle, and a bounded block can only observe it
        // at block granularity. Equal-work runs keep the plain driver.
        while measured < max_cycles {
            self.advance();
            measured += 1;
            if let Some(state) = wd.as_mut() {
                self.watchdog_check(state)?;
            }
            if (0..self.names.len())
                .all(|t| self.core.committed(t) - committed0[t] >= insts_per_thread)
            {
                completion = Completion::CommitTarget;
                break;
            }
        }
        self.core.finish_classification();
        Ok(self.collect(
            measured,
            completion,
            &committed0,
            &class0,
            &bpred0,
            l1i0,
            l1d0,
            l20,
        ))
    }

    /// Applies `insts` additional instructions of functional warm-up per
    /// thread (on top of the default applied at construction).
    pub fn with_functional_warmup(mut self, insts: u64) -> Self {
        self.core.warm_functional(insts);
        self
    }

    /// Warms the core for `warmup_cycles`, then measures `measure_cycles`
    /// and returns the results.
    pub fn run(&mut self, warmup_cycles: u64, measure_cycles: u64) -> RunResult {
        self.try_run(warmup_cycles, measure_cycles, None)
            .expect("infallible without a watchdog")
    }

    /// Non-panicking variant of [`Simulation::run`] with an optional
    /// forward-progress [`Watchdog`] (active during warm-up and
    /// measurement): a wedged pipeline aborts with a diagnosis instead of
    /// burning the whole measurement window committing nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the watchdog window elapses with no
    /// thread committing.
    pub fn try_run(
        &mut self,
        warmup_cycles: u64,
        measure_cycles: u64,
        watchdog: Option<Watchdog>,
    ) -> Result<RunResult, SimError> {
        let mut wd = self.watchdog_state(watchdog);
        self.drive(warmup_cycles, &mut wd)?;
        // Snapshot at measurement start.
        let committed0: Vec<u64> = (0..self.names.len())
            .map(|t| self.core.committed(t))
            .collect();
        let class0: Vec<(u64, u64)> = (0..self.names.len())
            .map(|t| {
                let c = self.core.classifier(t);
                (c.committed_in_sequence, c.committed_reordered)
            })
            .collect();
        let bpred0: Vec<(u64, u64)> = (0..self.names.len())
            .map(|t| self.core.bpred_counts(t))
            .collect();
        let l1i0 = *self.core.hierarchy().l1i_stats();
        let l1d0 = *self.core.hierarchy().l1d_stats();
        let l20 = *self.core.hierarchy().l2_stats();
        self.core.counters = Counters::new();
        if let Some(tracer) = self.core.tracer_mut() {
            tracer.reset();
        }

        self.drive(measure_cycles, &mut wd)?;
        self.core.finish_classification();
        Ok(self.collect(
            measure_cycles,
            Completion::FixedWindow,
            &committed0,
            &class0,
            &bpred0,
            l1i0,
            l1d0,
            l20,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        measured: u64,
        completion: Completion,
        committed0: &[u64],
        class0: &[(u64, u64)],
        bpred0: &[(u64, u64)],
        l1i0: CacheStats,
        l1d0: CacheStats,
        l20: CacheStats,
    ) -> RunResult {
        let threads = (0..self.names.len())
            .map(|t| {
                let committed = self.core.committed(t) - committed0[t];
                let c = self.core.classifier(t);
                let in_seq = c.committed_in_sequence - class0[t].0;
                let reordered = c.committed_reordered - class0[t].1;
                let total = in_seq + reordered;
                ThreadResult {
                    benchmark: self.names[t].clone(),
                    committed,
                    cpi: if committed == 0 {
                        f64::INFINITY
                    } else {
                        measured as f64 / committed as f64
                    },
                    in_sequence_fraction: if total == 0 {
                        0.0
                    } else {
                        in_seq as f64 / total as f64
                    },
                    missteer_rate: self.core.missteer_rate(t),
                    branch_mispredict_ratio: {
                        let (l, m) = self.core.bpred_counts(t);
                        let (dl, dm) = (l - bpred0[t].0, m - bpred0[t].1);
                        if dl == 0 {
                            0.0
                        } else {
                            dm as f64 / dl as f64
                        }
                    },
                    in_sequence_series: c.in_sequence_series.clone(),
                    reordered_series: c.reordered_series.clone(),
                }
            })
            .collect();

        RunResult {
            cycles: measured,
            threads,
            counters: self.core.counters.clone(),
            l1i: cache_delta(self.core.hierarchy().l1i_stats(), &l1i0),
            l1d: cache_delta(self.core.hierarchy().l1d_stats(), &l1d0),
            l2: cache_delta(self.core.hierarchy().l2_stats(), &l20),
            late_shelf_commits: self.core.late_shelf_commits(),
            completion,
            meta: self.meta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SteerPolicy;

    #[test]
    fn unknown_benchmark_is_an_error() {
        let cfg = CoreConfig::base64(1);
        let err = match Simulation::from_names(cfg, &["nope"], 0) {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert_eq!(err, UnknownBenchmark("nope".to_owned()));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn single_thread_run_commits_instructions() {
        let cfg = CoreConfig::base64(1);
        let mut sim = Simulation::from_names(cfg, &["hmmer"], 3).unwrap();
        let r = sim.run(300, 3_000);
        assert!(
            r.counters.committed > 500,
            "committed {}",
            r.counters.committed
        );
        assert!(r.threads[0].cpi.is_finite());
        assert!(r.threads[0].cpi > 0.2, "cpi {}", r.threads[0].cpi);
        assert_eq!(r.late_shelf_commits, 0);
    }

    #[test]
    fn four_thread_smt_run() {
        let cfg = CoreConfig::base64(4);
        let mut sim = Simulation::from_names(cfg, &["gcc", "mcf", "hmmer", "lbm"], 1).unwrap();
        let r = sim.run(300, 3_000);
        for t in &r.threads {
            assert!(t.committed > 0, "{} made no progress", t.benchmark);
        }
        assert_eq!(r.late_shelf_commits, 0);
    }

    #[test]
    fn shelf_config_runs_and_uses_the_shelf() {
        let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
        let mut sim = Simulation::from_names(cfg, &["gcc", "milc"], 2).unwrap();
        let r = sim.run(300, 3_000);
        assert!(
            r.counters.dispatched_shelf > 0,
            "practical steering never used the shelf"
        );
        assert!(r.counters.issued_shelf > 0);
        assert_eq!(r.late_shelf_commits, 0);
    }

    #[test]
    fn always_shelf_approximates_in_order() {
        // On high-ILP code the OOO baseline must clearly beat the all-shelf
        // (in-order) machine. (On chain-serial benchmarks the two can be
        // close, and the in-order machine may even edge ahead thanks to its
        // near-absence of wrong-path cache pollution.)
        let base = CoreConfig::base64(1);
        let mut sim_ooo = Simulation::from_names(base, &["hmmer"], 5).unwrap();
        let ooo = sim_ooo.run(2_000, 8_000);
        let ino_cfg = CoreConfig::base64_shelf64(1, SteerPolicy::AlwaysShelf, true);
        let mut sim_ino = Simulation::from_names(ino_cfg, &["hmmer"], 5).unwrap();
        let ino = sim_ino.run(2_000, 8_000);
        assert!(
            ino.threads[0].cpi > ooo.threads[0].cpi * 1.2,
            "OOO ({}) should clearly beat in-order ({}) on high-ILP code",
            ooo.threads[0].cpi,
            ino.threads[0].cpi
        );
        assert_eq!(ino.late_shelf_commits, 0);
    }

    #[test]
    fn fixed_window_completion_and_meta() {
        let cfg = CoreConfig::base64(1);
        let hash = cfg.stable_hash();
        let mut sim = Simulation::from_names(cfg, &["hmmer"], 3).unwrap();
        let r = sim.run(300, 2_000);
        assert_eq!(r.completion, Completion::FixedWindow);
        assert!(!r.completion.is_truncated());
        assert_eq!(r.meta.seed, 3);
        assert_eq!(r.meta.benchmarks, vec!["hmmer".to_owned()]);
        assert_eq!(r.meta.config_hash, hash);
    }

    #[test]
    fn config_hash_distinguishes_designs() {
        let a = CoreConfig::base64(2).stable_hash();
        let b = CoreConfig::base128(2).stable_hash();
        let a2 = CoreConfig::base64(2).stable_hash();
        assert_eq!(a, a2, "equal configs hash equal");
        assert_ne!(a, b, "different designs hash differently");
    }

    #[test]
    fn run_until_committed_records_truncation() {
        let cfg = CoreConfig::base64(1);
        let mut sim = Simulation::from_names(cfg.clone(), &["hmmer"], 3).unwrap();
        // An impossible target within 100 cycles: must report truncation.
        let r = sim.run_until_committed(200, 1_000_000, 100);
        assert_eq!(r.completion, Completion::MaxCyclesExpired);
        assert!(r.completion.is_truncated());
        // A tiny target with generous budget: must report target reached.
        let mut sim = Simulation::from_names(cfg, &["hmmer"], 3).unwrap();
        let r = sim.run_until_committed(200, 50, 50_000);
        assert_eq!(r.completion, Completion::CommitTarget);
        assert!(r.threads[0].committed >= 50);
    }

    #[test]
    fn watchdog_aborts_injected_livelock_within_window() {
        let cfg = CoreConfig::base64(1);
        let mut sim = Simulation::from_names(cfg, &["hmmer"], 3).unwrap();
        // From driver cycle 500 on, the pipeline never commits again.
        sim.inject_stall(500, u64::MAX);
        let err = sim
            .try_run(200, 50_000, Some(Watchdog::new(400)))
            .expect_err("watchdog should fire");
        let SimError::Deadlock(d) = err;
        assert_eq!(d.window, 400);
        assert!(
            d.cycle <= 500 + 400 + 1,
            "fired at {} — should abort within one window of the stall",
            d.cycle
        );
        assert_eq!(d.threads.len(), 1);
        assert!(d.to_string().contains("rob="), "diagnosis: {d}");
    }

    #[test]
    fn watchdog_tolerates_slow_but_progressing_runs() {
        let cfg = CoreConfig::base64(1);
        let mut sim = Simulation::from_names(cfg, &["hmmer"], 3).unwrap();
        // Three separate 200-cycle stalls: slow, but progress resumes well
        // inside the 400-cycle window each time.
        sim.inject_stall(400, 200);
        sim.inject_stall(900, 200);
        sim.inject_stall(1_400, 200);
        let r = sim
            .try_run(200, 3_000, Some(Watchdog::new(400)))
            .expect("progressing run must not trip the watchdog");
        assert!(r.counters.committed > 0);
    }

    #[test]
    fn watchdog_covers_the_warmup_loop() {
        let cfg = CoreConfig::base64(1);
        let mut sim = Simulation::from_names(cfg, &["hmmer"], 3).unwrap();
        sim.inject_stall(0, u64::MAX);
        let err = sim
            .try_run(10_000, 1_000, Some(Watchdog::new(300)))
            .expect_err("warm-up livelock should abort");
        let SimError::Deadlock(d) = err;
        assert!(d.cycle <= 301, "fired at {}", d.cycle);
    }

    #[test]
    fn watchdog_diagnoses_livelock_with_cycle_skipping_engaged() {
        // The skip engine jumps a memory-bound core across MSHR-fill
        // deadlines; the driver must still diagnose a deadlock within one
        // watchdog window of the last retired instruction. Blocks are
        // capped at stall boundaries, so the conservative last-progress
        // cycle is at most the stall start (2000) and the watchdog must
        // fire by 2000 + window.
        let cfg = CoreConfig::base64(1);
        let mut sim = Simulation::from_names(cfg, &["mcf"], 3).unwrap();
        assert!(sim.core().cycle_skipping(), "skipping defaults on");
        sim.inject_stall(2_000, u64::MAX);
        let err = sim
            .try_run(200, 50_000, Some(Watchdog::new(400)))
            .expect_err("watchdog should fire");
        let SimError::Deadlock(d) = err;
        assert!(
            d.cycle <= 2_000 + 400,
            "fired at {} — must abort within one window of the stall",
            d.cycle
        );
        assert!(
            sim.skip_stats().skipped_cycles > 0,
            "memory-bound run should have exercised the skip engine"
        );
    }

    #[test]
    fn skipping_and_plain_drivers_produce_identical_results() {
        let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
        let mut plain = Simulation::from_names(cfg.clone(), &["mcf", "lbm"], 7).unwrap();
        plain.set_cycle_skipping(false);
        let rp = plain.run(500, 8_000);

        let mut skip = Simulation::from_names(cfg, &["mcf", "lbm"], 7).unwrap();
        let rs = skip.run(500, 8_000);
        assert!(
            skip.skip_stats().skipped_cycles > 0,
            "memory-bound mix should skip"
        );
        assert_eq!(rp.counters, rs.counters, "driver results diverged");
        for (a, b) in rp.threads.iter().zip(&rs.threads) {
            assert_eq!(a.committed, b.committed);
            assert_eq!(a.cpi.to_bits(), b.cpi.to_bits());
        }
    }

    #[test]
    fn deterministic_replay() {
        let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, false);
        let r1 = Simulation::from_names(cfg.clone(), &["astar", "sjeng"], 9)
            .unwrap()
            .run(200, 2_000);
        let r2 = Simulation::from_names(cfg, &["astar", "sjeng"], 9)
            .unwrap()
            .run(200, 2_000);
        assert_eq!(r1.counters, r2.counters);
        assert_eq!(r1.threads[0].committed, r2.threads[0].committed);
    }
}
