//! `shelfsim-core` — a cycle-level SMT out-of-order core with hybrid shelf
//! dispatch, reproducing Sleiman & Wenisch, "Efficiently Scaling
//! Out-of-Order Cores for Simultaneous Multithreading" (ISCA 2016).
//!
//! The crate provides:
//!
//! * [`CoreConfig`] — the design points of paper Table I (`base64`,
//!   `base128`, `base64_shelf64`) plus the microarchitecture-assumption and
//!   ablation flags;
//! * [`Core`] — the pipeline itself (see [`pipeline`] for the mechanism
//!   inventory);
//! * [`Simulation`] — a driver that builds workloads, warms structures, and
//!   measures CPI/STP inputs, classification fractions, and energy events;
//! * steering policies ([`SteerPolicy`]) including the practical RCT/PLT
//!   hardware and the greedy oracle of §IV.
//!
//! # Example
//!
//! ```
//! use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};
//!
//! let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
//! let mut sim = Simulation::from_names(cfg, &["gcc", "mcf"], 1).unwrap();
//! let result = sim.run(500, 2_000);
//! assert!(result.counters.committed > 0);
//! ```

pub mod classify;
pub mod config;
pub mod counters;
pub mod inst;
pub mod pipeline;
pub mod sim;
pub mod skip;
pub mod steer;

pub use classify::Classifier;
pub use config::{CoreConfig, FetchPolicy, MemoryModel, SteerPolicy};
pub use counters::{Counters, StallCounters};
pub use inst::{InstId, Slab, Slot, Stage, Steer};
#[cfg(feature = "chaos")]
pub use pipeline::{ChaosKind, ChaosPlan};
pub use pipeline::{CommitEvent, CommitRecord, Core, ThreadOccupancy};
pub use sim::{
    thread_program_seed, Completion, DeadlockReport, RunMeta, RunResult, SimError, Simulation,
    ThreadResult, UnknownBenchmark, Watchdog,
};
pub use skip::{SkipCause, SkipStats, SKIP_CAUSES};
pub use steer::{OracleSteer, PracticalSteer};
// Re-export the observability types so downstream users of the core don't
// need a separate `shelfsim-trace` dependency to consume traces.
pub use shelfsim_trace::{
    EndKind, Lifecycle, OccupancySample, QueueKind, StallCause, Tracer, STALL_CAUSES,
};
