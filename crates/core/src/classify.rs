//! In-sequence / reordered classification (paper §II, Figures 1, 2, 11).
//!
//! An instruction is **in-sequence** if it issues after all of its data,
//! speculation, and structural dependences have resolved — equivalently, if
//! a simple in-order core (with a Smith–Pleszkun result shift register for
//! speculation) would have issued it at the same point in the schedule. We
//! detect this operationally at issue time:
//!
//! 1. *program order*: every elder instruction of the thread has already
//!    issued (checked with a shadow [`IssueTracker`] spanning both queues);
//! 2. *speculation*: the instruction's writeback lands at or after the
//!    thread's outstanding speculation horizon (shadow result shift
//!    register), so the in-order core's SSR would not have stalled it.
//!
//! Structural resolution is implied by the fact that the instruction did
//! issue. Committed instructions then contribute to per-thread in-sequence
//! fractions (Figures 1, 11) and to series-length distributions (Figure 2).

use shelfsim_stats::WeightedCdf;
use shelfsim_uarch::IssueTracker;

/// Per-thread classification state and committed-instruction statistics.
#[derive(Clone, Debug, Default)]
pub struct Classifier {
    tracker: IssueTracker,
    /// Absolute cycle until which issued speculation remains unresolved.
    spec_horizon: u64,
    /// Committed instructions classified in-sequence.
    pub committed_in_sequence: u64,
    /// Committed instructions classified reordered.
    pub committed_reordered: u64,
    /// Current commit-order series state.
    current: Option<(bool, u64)>,
    /// Series-length distribution of in-sequence instructions.
    pub in_sequence_series: WeightedCdf,
    /// Series-length distribution of reordered instructions.
    pub reordered_series: WeightedCdf,
}

impl Classifier {
    /// Creates an empty classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dispatched instruction; returns its classification index
    /// (to be stored in the instruction's slot).
    pub fn dispatch(&mut self) -> u64 {
        let idx = self.tracker.next_index();
        self.tracker.dispatch(idx);
        idx
    }

    /// Classifies an instruction at issue. `latency_to_writeback` is the
    /// instruction's minimum issue-to-writeback delay; `resolution_delay`
    /// its own speculation resolution time.
    ///
    /// Returns `true` if the instruction is in-sequence.
    pub fn issue(
        &mut self,
        classify_idx: u64,
        now: u64,
        latency_to_writeback: u32,
        resolution_delay: u32,
    ) -> bool {
        let in_order = self.tracker.head() == classify_idx;
        let spec_ok = now + latency_to_writeback as u64 >= self.spec_horizon;
        self.tracker.issue(classify_idx);
        self.spec_horizon = self.spec_horizon.max(now + resolution_delay as u64);
        in_order && spec_ok
    }

    /// Squash rollback: forget dispatched-but-unissued classification state
    /// at indices `>= from`.
    pub fn squash_from(&mut self, from: u64) {
        self.tracker.squash_from(from);
    }

    /// Records a committed instruction's classification, in program order.
    pub fn commit(&mut self, in_sequence: bool) {
        if in_sequence {
            self.committed_in_sequence += 1;
        } else {
            self.committed_reordered += 1;
        }
        match self.current {
            Some((kind, ref mut len)) if kind == in_sequence => *len += 1,
            Some((kind, len)) => {
                self.record_series(kind, len);
                self.current = Some((in_sequence, 1));
            }
            None => self.current = Some((in_sequence, 1)),
        }
    }

    fn record_series(&mut self, in_sequence: bool, len: u64) {
        if in_sequence {
            self.in_sequence_series.record(len);
        } else {
            self.reordered_series.record(len);
        }
    }

    /// Flushes the trailing open series into the distributions (call at the
    /// end of a run before reading the CDFs).
    pub fn finish(&mut self) {
        if let Some((kind, len)) = self.current.take() {
            self.record_series(kind, len);
        }
    }

    /// Fraction of committed instructions classified in-sequence.
    pub fn in_sequence_fraction(&self) -> f64 {
        let total = self.committed_in_sequence + self.committed_reordered;
        if total == 0 {
            0.0
        } else {
            self.committed_in_sequence as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_issue_classifies_in_sequence() {
        let mut c = Classifier::new();
        let a = c.dispatch();
        let b = c.dispatch();
        assert!(c.issue(a, 10, 1, 1));
        assert!(c.issue(b, 11, 1, 1));
    }

    #[test]
    fn out_of_order_issue_classifies_reordered() {
        let mut c = Classifier::new();
        let a = c.dispatch();
        let b = c.dispatch();
        assert!(!c.issue(b, 10, 1, 1), "issued past an unissued elder");
        assert!(c.issue(a, 11, 1, 1), "elder is now the oldest unissued");
    }

    #[test]
    fn speculation_shadow_marks_early_writeback_reordered() {
        let mut c = Classifier::new();
        let a = c.dispatch();
        let b = c.dispatch();
        // A branch-like instruction with a 5-cycle resolution delay.
        assert!(c.issue(a, 10, 1, 5));
        // A 1-cycle op issuing at 11 writes back at 12 < horizon 15: an
        // in-order core's SSR would have stalled it, so it is reordered.
        assert!(!c.issue(b, 11, 1, 5));
        // A later op past the horizon is in-sequence again.
        let d = c.dispatch();
        assert!(c.issue(d, 15, 1, 1));
    }

    #[test]
    fn commit_series_tracking() {
        let mut c = Classifier::new();
        for _ in 0..3 {
            c.commit(true);
        }
        for _ in 0..2 {
            c.commit(false);
        }
        c.commit(true);
        c.finish();
        assert_eq!(c.committed_in_sequence, 4);
        assert_eq!(c.committed_reordered, 2);
        assert_eq!(c.in_sequence_series.num_series(), 2);
        assert_eq!(c.reordered_series.num_series(), 1);
        assert_eq!(c.in_sequence_series.total_weight(), 4);
        assert!((c.in_sequence_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn squash_rewinds_tracker() {
        let mut c = Classifier::new();
        let a = c.dispatch();
        let b = c.dispatch();
        c.squash_from(b);
        let b2 = c.dispatch();
        assert_eq!(b, b2, "index reused after squash");
        assert!(c.issue(a, 1, 1, 1));
        assert!(c.issue(b2, 2, 1, 1));
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(Classifier::new().in_sequence_fraction(), 0.0);
    }
}
