//! Core configuration (paper Table I) and the evaluated design points.

use shelfsim_mem::HierarchyConfig;

/// Memory consistency model (paper §III-D).
///
/// The paper evaluates the relaxed ARMv7 model; it scopes out stricter
/// models (TSO / sequential consistency) while describing exactly what they
/// would cost the shelf: loads remain speculative until all elder loads
/// complete, so *every* shelf instruction behind an incomplete load must
/// delay its writeback, and shelf stores must allocate store-queue entries
/// because the store buffer may not coalesce. [`MemoryModel::Tso`]
/// implements those constraints so the cost can be measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MemoryModel {
    /// Relaxed/weak ordering (ARMv7-like), the paper's evaluated model.
    #[default]
    Relaxed,
    /// Total Store Order: shelf writebacks wait for elder loads; shelf
    /// stores allocate SQ entries.
    Tso,
}

/// SMT fetch policy (paper Table I uses ICOUNT, Tullsen et al. 1996).
///
/// The paper notes that ICOUNT is *synergistic* with shelf steering: fetch
/// bandwidth flows to fast-moving threads while stalled threads' work goes
/// to the shelf. Round-robin is provided as the ablation baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FetchPolicy {
    /// Fewest instructions in the pre-issue pipeline fetch first.
    #[default]
    Icount,
    /// Strict rotation among eligible threads.
    RoundRobin,
}

/// Instruction steering policy (paper §IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SteerPolicy {
    /// Everything to the IQ: a conventional OOO core (the shelf is unused).
    AlwaysIq,
    /// Everything to the shelf: approximates an in-order core.
    AlwaysShelf,
    /// The practical RCT + PLT hardware mechanism (§IV-B).
    Practical,
    /// The greedy oracle with knowledge of the future schedule (§IV-A).
    Oracle,
}

/// Full configuration of one simulated core.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreConfig {
    /// Hardware thread contexts (1, 2, 4, or 8).
    pub threads: usize,
    /// Fetch width (Table I: 8-wide fetch).
    pub fetch_width: usize,
    /// Decode/rename/dispatch width (Table I: 4-wide OOO).
    pub dispatch_width: usize,
    /// Issue width.
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Fetch-to-dispatch depth in cycles (Table I: 6).
    pub fetch_to_dispatch: u32,
    /// Total ROB entries, statically partitioned across threads.
    pub rob_entries: usize,
    /// Total IQ entries (shared among threads).
    pub iq_entries: usize,
    /// Total load-queue entries, partitioned.
    pub lq_entries: usize,
    /// Total store-queue entries, partitioned.
    pub sq_entries: usize,
    /// Total shelf entries, partitioned (0 disables the shelf).
    pub shelf_entries: usize,
    /// Steering policy.
    pub steer: SteerPolicy,
    /// Per-thread store-buffer entries (post-commit stores draining to L1D).
    pub store_buffer_entries: usize,
    /// Functional units: simple int ALUs (also branches).
    pub fu_int_alu: usize,
    /// Functional units: int multiply/divide.
    pub fu_int_muldiv: usize,
    /// Functional units: FP.
    pub fu_fp: usize,
    /// Functional units: memory ports.
    pub fu_mem_ports: usize,
    /// Memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Optimistic microarchitecture assumption (§III-A): allow a shelf head
    /// to issue in the same cycle as the last older IQ instruction (the
    /// issue-tracking bitvector update is bypassed into wakeup-select).
    /// `false` models the conservative design that keeps the update off the
    /// critical path, making the shelf head see IQ issues one cycle late.
    pub same_cycle_shelf_issue: bool,
    /// Ablation (§III-B): use a single speculation shift register instead of
    /// the IQ/shelf pair, reintroducing the starvation pathology.
    pub single_ssr: bool,
    /// Ablation (§III-B): shrink the shelf index space to 1x the entry count
    /// (indices release only at writeback), recreating the resource shortage
    /// the doubled virtual index space removes.
    pub narrow_shelf_index: bool,
    /// Fetch and execute synthetic wrong-path instructions after a
    /// mispredicted branch until it resolves (they allocate real resources
    /// and are squashed at resolution).
    pub wrong_path_fetch: bool,
    /// Practical steering: RCT counter width in bits (Table I: 5).
    pub rct_bits: u32,
    /// Practical steering: PLT columns per thread (Table I: 4).
    pub plt_columns: u32,
    /// Memory consistency model (§III-D; the paper evaluates `Relaxed`).
    pub memory_model: MemoryModel,
    /// Branch direction-predictor organization.
    pub predictor: shelfsim_uarch::PredictorKind,
    /// Clustered-backend forwarding penalty (paper §VI: the shelf and the
    /// IQ may live in different clusters). A value produced in one cluster
    /// costs this many extra cycles to consume from the other. 0 = the
    /// evaluated monolithic backend.
    pub cluster_forward_penalty: u32,
    /// SMT fetch policy (Table I: ICOUNT).
    pub fetch_policy: FetchPolicy,
}

impl CoreConfig {
    /// The paper's baseline: 4-thread SMT, 64-entry ROB, 32-entry IQ/LQ/SQ,
    /// no shelf (Table I "Base 64").
    pub fn base64(threads: usize) -> Self {
        CoreConfig {
            threads,
            fetch_width: 8,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            fetch_to_dispatch: 6,
            rob_entries: 64,
            iq_entries: 32,
            lq_entries: 32,
            sq_entries: 32,
            shelf_entries: 0,
            steer: SteerPolicy::AlwaysIq,
            store_buffer_entries: 8,
            fu_int_alu: 3,
            fu_int_muldiv: 1,
            fu_fp: 2,
            fu_mem_ports: 2,
            hierarchy: HierarchyConfig::default(),
            same_cycle_shelf_issue: false,
            single_ssr: false,
            narrow_shelf_index: false,
            wrong_path_fetch: true,
            rct_bits: 5,
            plt_columns: 4,
            memory_model: MemoryModel::Relaxed,
            predictor: shelfsim_uarch::PredictorKind::Tournament,
            cluster_forward_penalty: 0,
            fetch_policy: FetchPolicy::Icount,
        }
    }

    /// The doubled design: 128-entry ROB, 64-entry IQ/LQ/SQ ("Base 128"),
    /// the paper's upper bound for the shelf's improvement.
    pub fn base128(threads: usize) -> Self {
        CoreConfig {
            rob_entries: 128,
            iq_entries: 64,
            lq_entries: 64,
            sq_entries: 64,
            ..Self::base64(threads)
        }
    }

    /// The shelf-augmented design: Base 64 plus a 64-entry shelf ("64+64").
    ///
    /// `optimistic` selects the same-cycle-issue microarchitecture
    /// assumption (the paper reports both bars in Figures 10 and 13).
    pub fn base64_shelf64(threads: usize, steer: SteerPolicy, optimistic: bool) -> Self {
        CoreConfig {
            shelf_entries: 64,
            steer,
            same_cycle_shelf_issue: optimistic,
            ..Self::base64(threads)
        }
    }

    /// Hard cap on hardware threads per core. [`CoreConfig::validate`]
    /// enforces it, and the skip engine sizes its per-thread state
    /// (`StableSnapshot` lenses, park certificates) from the same constant —
    /// a const assertion in `skip.rs` ties the two together so raising the
    /// cap for wider SMT campaigns cannot silently truncate fixed-point
    /// proofs.
    pub const MAX_THREADS: usize = 8;

    /// ROB entries available to each thread (static partitioning, §V).
    pub fn rob_per_thread(&self) -> usize {
        (self.rob_entries / self.threads).max(1)
    }

    /// LQ entries per thread.
    pub fn lq_per_thread(&self) -> usize {
        (self.lq_entries / self.threads).max(1)
    }

    /// SQ entries per thread.
    pub fn sq_per_thread(&self) -> usize {
        (self.sq_entries / self.threads).max(1)
    }

    /// Shelf entries per thread (0 when the shelf is disabled).
    pub fn shelf_per_thread(&self) -> usize {
        if self.shelf_entries == 0 {
            0
        } else {
            (self.shelf_entries / self.threads).max(1)
        }
    }

    /// Number of functional units in the pool that executes `kind`
    /// (config introspection for the static-analysis passes).
    pub fn fu_count(&self, kind: shelfsim_isa::FuKind) -> usize {
        match kind {
            shelfsim_isa::FuKind::IntAlu => self.fu_int_alu,
            shelfsim_isa::FuKind::IntMulDiv => self.fu_int_muldiv,
            shelfsim_isa::FuKind::Fp => self.fu_fp,
            shelfsim_isa::FuKind::MemPort => self.fu_mem_ports,
        }
    }

    /// Total functional units across all pools: a hard cap on sustained
    /// issue throughput regardless of width.
    pub fn fu_total(&self) -> usize {
        self.fu_int_alu + self.fu_int_muldiv + self.fu_fp + self.fu_mem_ports
    }

    /// Per-thread front-end buffer capacity (fetch pipe), partitioned.
    pub fn frontend_per_thread(&self) -> usize {
        ((self.fetch_to_dispatch as usize * self.fetch_width) / self.threads).max(self.fetch_width)
    }

    /// Physical register file size: architectural state for every thread
    /// plus one rename register per ROB entry (IQ instructions allocate; the
    /// shelf does not — that is the point of the design).
    pub fn num_phys_regs(&self) -> usize {
        self.threads * shelfsim_isa::NUM_ARCH_REGS + self.rob_entries
    }

    /// Extension tag space size (paper §III-C).
    ///
    /// An extension tag stays live for as long as the mapping it installed
    /// is current: a register whose *last* writer was a shelf instruction
    /// holds its tag until an IQ instruction re-renames the register and
    /// retires. Every RAT entry of every thread can therefore hold one
    /// extension tag simultaneously, on top of the in-flight shelf
    /// instructions (one tag each, held until their superseding writer
    /// retires — bounded by the doubled virtual index space). Undersizing
    /// this pool is not just a stall risk but a deadlock risk under
    /// all-shelf steering.
    pub fn num_ext_tags(&self) -> usize {
        if self.shelf_entries == 0 {
            0
        } else {
            self.threads * shelfsim_isa::NUM_ARCH_REGS + 2 * self.shelf_entries + 16
        }
    }

    /// Total wakeup tag space (physical + extension).
    pub fn num_tags(&self) -> usize {
        self.num_phys_regs() + self.num_ext_tags()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero widths, zero threads,
    /// shelf with no steering, etc.).
    pub fn validate(&self) {
        assert!(
            self.threads >= 1 && self.threads <= Self::MAX_THREADS,
            "1..={} threads supported",
            Self::MAX_THREADS
        );
        assert!(self.fetch_width >= 1 && self.dispatch_width >= 1);
        assert!(self.issue_width >= 1 && self.commit_width >= 1);
        assert!(
            self.rob_entries >= self.threads,
            "need at least one ROB entry per thread"
        );
        assert!(self.iq_entries >= 1);
        assert!(self.lq_entries >= self.threads && self.sq_entries >= self.threads);
        assert!(self.store_buffer_entries >= 1);
        assert!(self.fu_int_alu >= 1 && self.fu_mem_ports >= 1);
        if self.shelf_entries == 0 {
            assert_eq!(
                self.steer,
                SteerPolicy::AlwaysIq,
                "steering to a shelf requires shelf entries"
            );
        }
        assert!((1..=8).contains(&self.rct_bits));
        assert!((1..=8).contains(&self.plt_columns));
    }

    /// A deterministic 64-bit fingerprint of the full configuration
    /// (FNV-1a over the canonical `Debug` rendering). Equal configurations
    /// hash equal; any field change changes the hash. Used to key campaign
    /// journal entries and to stamp [`crate::sim::RunMeta`] so a result can
    /// be matched back to the exact design point that produced it.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cap_is_max_threads_exactly() {
        // The cap itself must validate...
        CoreConfig::base64(CoreConfig::MAX_THREADS).validate();
        // ...and one past it must panic (see the should_panic test below),
        // so the skip engine's const tie to MAX_THREADS is load-bearing.
        assert_eq!(CoreConfig::MAX_THREADS, 8);
    }

    #[test]
    #[should_panic(expected = "threads supported")]
    fn over_cap_thread_count_is_rejected() {
        CoreConfig {
            threads: CoreConfig::MAX_THREADS + 1,
            ..CoreConfig::base64(1)
        }
        .validate();
    }

    #[test]
    fn table1_baseline_values() {
        let c = CoreConfig::base64(4);
        c.validate();
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.dispatch_width, 4);
        assert_eq!(c.fetch_to_dispatch, 6);
        assert_eq!(c.rob_per_thread(), 16);
        assert_eq!(c.shelf_per_thread(), 0);
    }

    #[test]
    fn doubled_design() {
        let c = CoreConfig::base128(4);
        c.validate();
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.iq_entries, 64);
        assert_eq!(c.lq_entries, 64);
    }

    #[test]
    fn shelf_design() {
        let c = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
        c.validate();
        assert_eq!(c.shelf_entries, 64);
        assert_eq!(c.shelf_per_thread(), 16);
        assert!(c.same_cycle_shelf_issue);
        assert!(c.num_ext_tags() > 0);
    }

    #[test]
    fn phys_reg_budget_scales_with_rob_not_shelf() {
        let base = CoreConfig::base64(4);
        let shelf = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
        let big = CoreConfig::base128(4);
        assert_eq!(
            base.num_phys_regs(),
            shelf.num_phys_regs(),
            "the shelf adds no PRF"
        );
        assert!(big.num_phys_regs() > base.num_phys_regs());
    }

    #[test]
    #[should_panic(expected = "shelf")]
    fn steering_without_shelf_panics() {
        let mut c = CoreConfig::base64(4);
        c.steer = SteerPolicy::Practical;
        c.validate();
    }

    #[test]
    fn single_thread_partitions() {
        let c = CoreConfig::base64(1);
        c.validate();
        assert_eq!(c.rob_per_thread(), 64);
        assert_eq!(c.lq_per_thread(), 32);
    }
}
