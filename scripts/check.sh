#!/usr/bin/env bash
# Repository health check: formatting, lints, the tier-1 test suite, and a
# static-analysis pass over the shipped kernels. Run from anywhere; exits
# nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== shelfsim lint kernels/*.s"
cargo run --release -p shelfsim-cli -- lint kernels/*.s

echo "== sanitizer smoke: freelist audits under --features sanitize"
cargo test -q -p shelfsim-uarch --features sanitize

echo "All checks passed."
