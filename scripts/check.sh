#!/usr/bin/env bash
# Repository health check: formatting, lints, the tier-1 test suite, and a
# static-analysis pass over the shipped kernels. Run from anywhere; exits
# nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== shelfsim lint kernels/*.s (deny warnings)"
cargo run --release -p shelfsim-cli -- lint --deny-warnings kernels/*.s

echo "== analyze smoke: static IPC bounds on the shipped kernels"
out="$(cargo run --release -q -p shelfsim-cli -- analyze --bounds --design base64 kernels/*.s)"
echo "$out" | grep -q "static IPC bounds" \
  || { echo "FAIL: analyze --bounds should print a bound table"; echo "$out"; exit 1; }

echo "== sanitizer smoke: freelist audits under --features sanitize"
cargo test -q -p shelfsim-uarch --features sanitize

echo "== campaign smoke: fault-injected sweep must quarantine and resume"
journal="$(mktemp -d)/campaign.jsonl"
campaign() {
  cargo run --release -q -p shelfsim-cli -- campaign \
    --designs base64,shelf-opt --mix gcc,mcf --mix hmmer,lbm \
    --warmup 500 --measure 3000 --watchdog 5000 --workers 2 \
    --fault-panics 1 --fault-persistent-panics 1 --fault-seed 3 \
    --journal "$journal"
}
out="$(campaign)"
echo "$out" | head -1
# The persistent injected panic must be quarantined, not fatal, and the
# transient one retried: partial results plus a taxonomy.
echo "$out" | grep -q "3 completed, 1 quarantined" \
  || { echo "FAIL: expected 3 completed, 1 quarantined"; echo "$out"; exit 1; }
echo "$out" | grep -q "taxonomy: .*panic=" \
  || { echo "FAIL: taxonomy should count the injected panics"; echo "$out"; exit 1; }
# Re-invoking the identical campaign must resume everything from the
# journal without re-running a single simulation.
out2="$(campaign)"
echo "$out2" | head -1
echo "$out2" | grep -q "4 resumed from journal" \
  || { echo "FAIL: second invocation should resume all 4 runs"; echo "$out2"; exit 1; }
rm -f "$journal"

echo "== preflight smoke: starved shelf must be rejected before simulating"
out="$(cargo run --release -q -p shelfsim-cli -- campaign \
  --designs shelf-inorder --mix gcc,mcf --override shelf=2 \
  --warmup 500 --measure 3000)"
echo "$out" | head -1
echo "$out" | grep -q "1 rejected" \
  || { echo "FAIL: expected the starved run to be rejected"; echo "$out"; exit 1; }
echo "$out" | grep -q "analysis-rejected" \
  || { echo "FAIL: taxonomy should carry analysis-rejected"; echo "$out"; exit 1; }

echo "== validate smoke: lockstep harness on a kernel + a generated program"
out="$(cargo run --release -q -p shelfsim-cli -- validate \
  --designs base64,shelf-opt --kernels daxpy --generated 1 --seed 9 \
  --commits 500 --warmup 200 --sweep)"
echo "$out" | head -1
echo "$out" | grep -q " 0 diverged, 0 invariant-violations" \
  || { echo "FAIL: validate smoke must be clean"; echo "$out"; exit 1; }

echo "== skip-equivalence smoke: cycle skipping must not change validation"
# The same lockstep sweep with the skip engine disabled: both runs must be
# clean, proving the event-driven fast-forward is an execution strategy and
# not a model change (the full cross-product lives in the skip_matrix test).
out="$(cargo run --release -q -p shelfsim-cli -- validate \
  --designs base64,shelf-opt --kernels daxpy --generated 1 --seed 9 \
  --commits 500 --warmup 200 --sweep --no-skip)"
echo "$out" | head -1
echo "$out" | grep -q " 0 diverged, 0 invariant-violations" \
  || { echo "FAIL: validate --no-skip smoke must be clean"; echo "$out"; exit 1; }

echo "== partial-skip smoke: per-thread parking bit-identical on asymmetric mixes"
# The asymmetric leg of the skip matrix: memory-parked threads next to
# compute threads, where coverage comes from per-thread certificates and
# reduced ticks rather than whole-core fixed points.
cargo test -q -p shelfsim-validate --test skip_matrix skip_matrix_asymmetric
cargo test -q -p shelfsim-core --test cycle_skipping partial_skip

echo "== chaos smoke: an armed commit-path mutation must be detected (exit 3)"
set +e
out="$(cargo run --release -q -p shelfsim-cli --features chaos -- validate \
  --designs shelf-opt --kernels branchy --commits 1000 --warmup 200 \
  --chaos skip-writeback:100 2>&1)"
status=$?
set -e
[ "$status" -eq 3 ] \
  || { echo "FAIL: expected divergence exit code 3, got $status"; echo "$out"; exit 1; }
echo "$out" | grep -q "1 diverged" \
  || { echo "FAIL: report should localize the mutation"; echo "$out"; exit 1; }

echo "== golden determinism suite (bit-identical counters, journal bytes)"
cargo test -q -p shelfsim --test golden_determinism

echo "== bench smoke: shelfsim bench emits well-formed throughput JSON"
bench_json="$(mktemp)"
# --compare prints the report-only old-vs-new kIPS delta table against the
# committed baseline (no perf assertion: hosts differ; the table is for
# human eyes in CI logs and PR review).
out="$(cargo run --release -q -p shelfsim-cli -- bench \
  --measure 5000 --out "$bench_json" --compare BENCH_core.json)"
echo "$out" | grep -q "baseline comparison" \
  || { echo "FAIL: bench --compare should print a delta table"; echo "$out"; exit 1; }
echo "$out" | grep "aggregate kIPS:"
python3 - "$bench_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "shelfsim-bench-v1", doc.get("schema")
assert doc["runs"], "bench must report at least one run"
assert doc["aggregate"]["kips"] > 0, "aggregate kIPS must be positive"
for r in doc["runs"]:
    assert r["kips"] > 0, f"{r['design']} reported zero kIPS"
    assert r["committed"] > 0, f"{r['design']} committed nothing"
print(f"bench smoke ok: {len(doc['runs'])} runs, "
      f"{doc['aggregate']['kips']:.0f} kIPS aggregate")
EOF
rm -f "$bench_json"

echo "== sweep smoke: sharded journals, resume, dedup, byte-deterministic merge"
sweep_dir="$(mktemp -d)/shards"
sweep() {
  cargo run --release -q -p shelfsim-cli -- sweep \
    --designs base64,shelf-opt --thread-counts 2 --mixes 1 \
    --warmup 200 --measure 1500 --workers "$1" --journal-dir "$sweep_dir" "${@:2}"
}
# Dry run first: the full matrix is a cache miss, nothing simulates.
out="$(sweep 2 --dry-run)"
echo "$out" | head -2
echo "$out" | grep -q "dry run: 0 cycles simulated" \
  || { echo "FAIL: --dry-run must not simulate"; echo "$out"; exit 1; }
# Real run with 2 workers, then an identical re-run with 3: everything
# must dedupe against the shards (zero misses, all resumed).
out="$(sweep 2)"
echo "$out" | grep -q "0 hits" \
  || { echo "FAIL: first sweep should start cold"; echo "$out"; exit 1; }
merged_a="$(cat "$sweep_dir"/shard-*.jsonl | sort)"
out="$(sweep 3 --pareto)"
echo "$out" | head -2
echo "$out" | grep -q "0 misses" \
  || { echo "FAIL: identical re-run must be 100% cache hits"; echo "$out"; exit 1; }
echo "$out" | grep -q "resumed from journal" \
  || { echo "FAIL: re-run should resume every run"; echo "$out"; exit 1; }
echo "$out" | grep -q "pareto: " \
  || { echo "FAIL: --pareto should print the frontier"; echo "$out"; exit 1; }
# The merged entry set is unchanged by the (cache-hit) re-run: same runs,
# same bytes, regardless of worker count or shard layout.
merged_b="$(cat "$sweep_dir"/shard-*.jsonl | sort)"
[ "$merged_a" = "$merged_b" ] \
  || { echo "FAIL: re-run must not change the journaled entry set"; exit 1; }
rm -rf "$sweep_dir"

echo "== campaign bench smoke: BENCH_campaign.json is well-formed"
python3 - BENCH_campaign.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "shelfsim-campaign-bench-v1", doc.get("schema")
assert doc["runs"] >= 200, f"acceptance floor is 200 runs, got {doc['runs']}"
assert doc["host_cores"] >= 1
rows = doc["scaling"]
assert rows and rows[0]["workers"] == 1, "first row is the 1-worker baseline"
for r in rows:
    assert r["runs_per_sec"] > 0 and r["wall_s"] > 0, r
    assert abs(r["ideal"] - min(r["workers"], doc["host_cores"])) < 1e-9, r
assert doc["scaling_efficiency"] >= 0.7, \
    f"scaling efficiency {doc['scaling_efficiency']} below the 0.7 bar"
cr = doc["cached_replay"]
assert cr["hit_rate"] == 1.0 and cr["resumed"] == doc["runs"], cr
print(f"campaign bench smoke ok: {doc['runs']} runs, "
      f"efficiency {doc['scaling_efficiency']:.2f} on "
      f"{doc['host_cores']} host core(s)")
EOF

echo "All checks passed."
