#!/usr/bin/env bash
# Engine-throughput bench: runs the fixed seeded `engine_micro` matrix
# (designs x mixes, see crates/bench/src/engine.rs) with a release build
# and writes BENCH_core.json at the repo root.
#
# If a BENCH_core.json already exists (the committed baseline), its
# aggregate kIPS is compared against the fresh run before the file is
# replaced. Wall-clock numbers are host-dependent: compare runs taken on
# the same machine, and prefer an idle one.
#
# Usage: scripts/bench.sh [--measure N] [--seed N] [--keep-baseline]
#   --measure N        measured cycles per run (default 300000)
#   --seed N           workload seed (default 7)
#   --keep-baseline    print the comparison but do not overwrite the file
set -euo pipefail
cd "$(dirname "$0")/.."

measure=300000
seed=7
keep_baseline=0
while [ $# -gt 0 ]; do
  case "$1" in
    --measure) measure="$2"; shift 2 ;;
    --seed) seed="$2"; shift 2 ;;
    --keep-baseline) keep_baseline=1; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release"
cargo build --release

out="BENCH_core.json"
fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

echo "== shelfsim bench (engine_micro, measure $measure, seed $seed)"
target/release/shelfsim bench --measure "$measure" --seed "$seed" --out "$fresh"

if [ -s "$out" ]; then
  echo "== comparison against committed baseline ($out)"
  python3 - "$out" "$fresh" <<'EOF'
import json, sys
base = json.load(open(sys.argv[1]))
new = json.load(open(sys.argv[2]))
bk, nk = base["aggregate"]["kips"], new["aggregate"]["kips"]
ratio = "n/a" if bk == 0 else f"{nk / bk:.2f}x"
print(f"aggregate kIPS: baseline {bk:.1f} -> new {nk:.1f}  ({ratio})")
bruns = {(r["design"], r["mix"]): r for r in base["runs"]}
for r in new["runs"]:
    b = bruns.get((r["design"], r["mix"]))
    if b is None:
        continue
    rr = "n/a" if b["kips"] == 0 else f"{r['kips'] / b['kips']:.2f}x"
    print(f"  {r['design']:<10} {r['mix']:<22} {b['kips']:>9.1f} -> {r['kips']:>9.1f} kIPS  ({rr})")
EOF
else
  echo "== no committed baseline to compare against"
fi

if [ "$keep_baseline" = 1 ]; then
  echo "kept existing $out (fresh numbers discarded)"
else
  mv "$fresh" "$out"
  trap - EXIT
  echo "wrote $out"
fi
